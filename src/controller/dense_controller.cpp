#include "controller/dense_controller.hpp"

#include <algorithm>
#include <cstdint>

#include "common/logging.hpp"
#include "controller/delivery.hpp"
#include "engine/event_engine.hpp"
#include "network/dn_popn.hpp"
#include "network/rn_linear.hpp"
#include "network/systolic.hpp"
#include "tensor/im2col.hpp"
#include "tensor/reference.hpp"

namespace stonne {

namespace {

index_t
blocks(index_t total, index_t t)
{
    return (total + t - 1) / t;
}

} // namespace

DenseController::DenseController(const HardwareConfig &cfg,
                                 EventEngine &engine,
                                 DistributionNetwork &dn,
                                 MultiplierArray &mn, ReductionNetwork &rn,
                                 GlobalBuffer &gb, Dram &dram,
                                 Watchdog *watchdog, FaultInjector *faults,
                                 Tracer *trace)
    : cfg_(cfg), engine_(engine), dn_(dn), mn_(mn), rn_(rn), gb_(gb),
      dram_(dram), wd_(watchdog), faults_(faults), trace_(trace),
      mapper_(cfg.ms_size)
{
    cfg_.validate();
}

void
DenseController::setPhase(const char *phase)
{
    // Call sites pass string literals, so a pointer compare recognises
    // the (very common) same-phase call without touching the string.
    if (phase == phase_tag_)
        return;
    phase_tag_ = phase;
    phase_ = phase;
    if (trace_ != nullptr)
        trace_->setPhase(phase_);
}

void
DenseController::traceAdvance(cycle_t cycles)
{
    if (trace_ != nullptr && cycles > 0)
        trace_->advance(cycles);
}

float
DenseController::convOutputValue(const Conv2dShape &shape,
                                 const Tensor &input, const Tensor &weights,
                                 const Tensor &bias, index_t n, index_t ko,
                                 index_t ox, index_t oy)
{
    const index_t cg = shape.cPerGroup();
    const index_t g = ko / shape.kPerGroup();
    const float *in = input.data();
    const float *w = weights.data() + ko * cg * shape.R * shape.S;
    const index_t in_c_stride = shape.X * shape.Y;
    const index_t in_n_stride = shape.C * in_c_stride;

    // The in-bounds filter rows/columns of this output position are a
    // contiguous sub-rectangle, invariant across channels: hoisting the
    // bounds out of the inner loops leaves a branch-free multiply-add
    // kernel. Skipped out-of-bounds terms contribute nothing, and the
    // kept terms accumulate in the identical (c, r, s) order, so the
    // float result is bit-identical to the guarded form.
    const index_t x_base = ox * shape.stride - shape.padding;
    const index_t y_base = oy * shape.stride - shape.padding;
    const index_t r_lo = std::max<index_t>(0, -x_base);
    const index_t r_hi = std::min(shape.R, shape.X - x_base);
    const index_t s_lo = std::max<index_t>(0, -y_base);
    const index_t s_hi = std::min(shape.S, shape.Y - y_base);

    float acc = 0.0f;
    for (index_t c = 0; c < cg; ++c) {
        const float *in_c =
            in + n * in_n_stride + (g * cg + c) * in_c_stride;
        const float *wc = w + c * shape.R * shape.S;
        for (index_t r = r_lo; r < r_hi; ++r) {
            const float *in_row =
                in_c + (x_base + r) * shape.Y + y_base;
            const float *wr = wc + r * shape.S;
            for (index_t s = s_lo; s < s_hi; ++s)
                acc += wr[s] * in_row[s];
        }
    }
    return acc + (bias.empty() ? 0.0f : bias.at(ko));
}

ControllerResult
DenseController::runConvFlexible(const Conv2dShape &shape, const Tile &tile,
                                 const Tensor &input, const Tensor &weights,
                                 const Tensor &bias, Tensor &output)
{
    shape.validate();
    const index_t cg = shape.cPerGroup();
    const index_t kg = shape.kPerGroup();
    const index_t xo = shape.outX();
    const index_t yo = shape.outY();
    const index_t window = shape.R * shape.S * cg;
    const index_t vn = tile.vnSize();
    const index_t folds = tile.folds(window);
    const bool folding = folds > 1;
    const index_t bpe = bytesPerElement(cfg_.data_type);

    ControllerResult res;
    const count_t mem0 = gb_.totalReads() + gb_.totalWrites();
    const count_t mult0 = mn_.multOps();

    const index_t nbx = blocks(xo, tile.t_x);
    const index_t nby = blocks(yo, tile.t_y);
    const index_t nbn = blocks(shape.N, tile.t_n);
    const index_t total_steps = nbn * nbx * nby;

    // Loop order follows the configured dataflow (Section IV-B):
    //  - OS: position chunks sized to the accumulator, so psums stay at
    //    the collection point until complete.
    //  - WS: each weight fold streams over ALL positions before the
    //    next fold loads — weights are fetched exactly once, but psums
    //    beyond the accumulator capacity round-trip through the GB.
    //  - IS: like OS, but activations stay resident in the array across
    //    filter blocks; only the first filter block fetches them.
    const index_t outs_per_step = tile.numVns();
    index_t steps_per_chunk = total_steps;
    if (folding && rn_.supportsAccumulation() &&
        cfg_.dataflow != Dataflow::WeightStationary) {
        steps_per_chunk = std::max<index_t>(
            1, cfg_.accumulator_size / outs_per_step);
    }
    // Psums spill to the GB when they outlive the accumulator: always
    // for the plain ART+DIST, and for WS whenever a fold's outputs
    // exceed the buffer.
    const bool psum_spill = folding &&
        (!rn_.supportsAccumulation() ||
         (cfg_.dataflow == Dataflow::WeightStationary &&
          steps_per_chunk * outs_per_step > cfg_.accumulator_size));
    const bool input_stationary =
        cfg_.dataflow == Dataflow::InputStationary;

    const bool ff = fastForward();

    // Stage the input activations: traffic is accounted, but the
    // cycles are hidden by the double-buffered prefetch (the previous
    // layer's execution overlaps the first tile's transfer).
    setPhase("dram staging");
    (void)dram_.transferCycles(
        std::min(input.size(), gb_.capacityElements() / 2) * bpe);

    // Per-step fetch list (lane-tagged for multicast accounting) and
    // the previous step's absolute-coordinate footprint: an element
    // already present anywhere in the array can reach its consumer over
    // the neighbour-forwarding links instead of the GB.
    std::vector<std::int64_t> fetch, prev_abs, cur_abs;
    const auto step_capacity = static_cast<std::size_t>(
        tile.t_g * tile.t_n * tile.t_x * tile.t_y * vn);
    fetch.reserve(step_capacity);
    prev_abs.reserve(step_capacity);
    cur_abs.reserve(step_capacity);
    // Per-fold coordinate tables: the e -> (c, r, s2) decomposition is
    // identical for every mapped position of a fold, so the div/mod
    // chain is hoisted out of the per-element loop into three small
    // tables indexed by the fold-local element offset.
    std::vector<index_t> cxy, rpad, spad;
    cxy.reserve(static_cast<std::size_t>(vn));
    rpad.reserve(static_cast<std::size_t>(vn));
    spad.reserve(static_cast<std::size_t>(vn));

    // Single-lane tiles (one mapped position cluster per step) fetch a
    // footprint whose in-bounds count and sliding-window overlap depend
    // only on (fold, x, y): the batch/group/filter-block indices shift
    // every coordinate by a common offset, which cancels in both the
    // bounds test and the equality comparison against the previous
    // step. Both counts are therefore tabulated once per layer and the
    // per-step loop skips the footprint enumeration entirely; the
    // values are the same ones the enumeration would produce, so
    // delivered-element and forwarding counters are unchanged.
    const bool lane1_tile = tile.t_g == 1 && tile.t_n == 1 &&
        tile.t_x == 1 && tile.t_y == 1;
    std::vector<index_t> kept_tbl, ovl_tbl;
    if (lane1_tile) {
        const std::size_t cells =
            static_cast<std::size_t>(folds) * xo * yo;
        kept_tbl.assign(cells, 0);
        ovl_tbl.assign(cells, 0);
        std::vector<std::int64_t> cur, prev;
        cur.reserve(static_cast<std::size_t>(vn));
        prev.reserve(static_cast<std::size_t>(vn));
        for (index_t f = 0; f < folds; ++f) {
            const index_t e0 = f * vn;
            const index_t len = std::min(vn, window - e0);
            cxy.clear();
            rpad.clear();
            spad.clear();
            for (index_t e = e0; e < e0 + len; ++e) {
                const index_t c = e / (shape.R * shape.S);
                const index_t rem = e % (shape.R * shape.S);
                cxy.push_back(c * shape.X * shape.Y);
                rpad.push_back(rem / shape.S - shape.padding);
                spad.push_back(rem % shape.S - shape.padding);
            }
            for (index_t x = 0; x < xo; ++x) {
                const index_t x_st = x * shape.stride;
                prev.clear();
                for (index_t y = 0; y < yo; ++y) {
                    const index_t y_st = y * shape.stride;
                    cur.clear();
                    for (index_t j = 0; j < len; ++j) {
                        const index_t ix = x_st + rpad[j];
                        const index_t iy = y_st + spad[j];
                        if (ix < 0 || ix >= shape.X || iy < 0 ||
                            iy >= shape.Y)
                            continue;
                        cur.push_back(cxy[j] + ix * shape.Y + iy);
                    }
                    const std::size_t idx = static_cast<std::size_t>(
                        (f * xo + x) * yo + y);
                    kept_tbl[idx] = static_cast<index_t>(cur.size());
                    if (y > 0) {
                        // Footprints are sorted by construction (see
                        // the enumeration comment below), so a
                        // two-pointer sweep counts the overlap.
                        index_t ovl = 0;
                        std::size_t pi = 0;
                        for (const std::int64_t code : cur) {
                            while (pi < prev.size() && prev[pi] < code)
                                ++pi;
                            if (pi < prev.size() && prev[pi] == code)
                                ++ovl;
                        }
                        ovl_tbl[idx] = ovl;
                    }
                    prev.swap(cur);
                }
            }
        }
    }
    cycle_t prev_block_cycles = 0;

    // Pipeline fill: the multiply/reduce/collect pipeline fills once and
    // stays full across folds and filter blocks (weights and operands
    // stream continuously).
    const cycle_t fill = 1 +
        static_cast<cycle_t>(rn_.latency(std::min(vn, window))) + 1;
    res.cycles += fill;
    setPhase("pipeline fill");
    traceAdvance(fill);

    // Weight reconfiguration is double-buffered: the next fold's
    // weights stream while the current fold computes, so only the
    // excess over the previous fold's compute time is exposed.
    cycle_t prev_fold_cycles = 0;

    for (index_t g0 = 0; g0 < shape.G; g0 += tile.t_g) {
        const index_t tg = std::min(tile.t_g, shape.G - g0);
        for (index_t k0 = 0; k0 < kg; k0 += tile.t_k) {
            const index_t tk = std::min(tile.t_k, kg - k0);
            cycle_t block_cycles = 0;

            // Next weight tile staged from the DRAM prefetch stream
            // behind the previous block's compute.
            const cycle_t stall = dram_.streamingStall(
                tg * tk * window * bpe, prev_block_cycles);
            res.cycles += stall;
            if (stall > 0) {
                setPhase("dram staging");
                traceAdvance(stall);
            }

            for (index_t chunk0 = 0; chunk0 < total_steps;
                 chunk0 += steps_per_chunk) {
                const index_t chunk_len =
                    std::min(steps_per_chunk, total_steps - chunk0);
                index_t chunk_outputs = 0;

                for (index_t f = 0; f < folds; ++f) {
                    const index_t e0 = f * vn;
                    const index_t len = std::min(vn, window - e0);

                    cxy.clear();
                    rpad.clear();
                    spad.clear();
                    for (index_t e = e0; e < e0 + len; ++e) {
                        const index_t c = e / (shape.R * shape.S);
                        const index_t rem = e % (shape.R * shape.S);
                        cxy.push_back(c * shape.X * shape.Y);
                        rpad.push_back(rem / shape.S - shape.padding);
                        spad.push_back(rem % shape.S - shape.padding);
                    }

                    // Weight reconfiguration: tg*tk*len distinct values,
                    // multicast across the position clusters; only the
                    // part the previous fold's compute could not hide
                    // is exposed.
                    setPhase("weight fold delivery");
                    const cycle_t w_cycles = engine_.deliver(
                        dn_, gb_, tg * tk * len,
                        tile.t_n * tile.t_x * tile.t_y,
                        PackageKind::Weight, ff);
                    block_cycles += w_cycles > prev_fold_cycles
                        ? w_cycles - prev_fold_cycles : 0;
                    cycle_t fold_cycles = 0;

                    bool have_prev = false;
                    for (index_t si = 0; si < chunk_len; ++si) {
                        const index_t s = chunk0 + si;
                        const index_t yb = s % nby;
                        const index_t xb = (s / nby) % nbx;
                        const index_t nb = s / (nby * nbx);
                        const index_t y0p = yb * tile.t_y;
                        const index_t x0p = xb * tile.t_x;
                        const index_t n0p = nb * tile.t_n;
                        const index_t ty = std::min(tile.t_y, yo - y0p);
                        const index_t tx = std::min(tile.t_x, xo - x0p);
                        const index_t tn =
                            std::min(tile.t_n, shape.N - n0p);

                        // Fetch list: in-bounds input coordinates of this
                        // fold slice across all mapped positions. Filters
                        // share inputs (multicast across tk), so k does
                        // not appear in the coordinates. Different
                        // position lanes map the same element to
                        // different leaf offsets, so the tree cannot
                        // merge them into one multicast: coordinates are
                        // tagged per lane, and only the lane's own
                        // sliding-window overlap is reused (over the LMN
                        // forwarding links).
                        // The list is sorted and duplicate-free by
                        // construction, so no sort/unique pass is
                        // needed: the lane tag ascends over the
                        // (g, n, x, y) nest, and within a lane the kept
                        // codes strictly increase with e — an s2 step
                        // adds 1 to iy; an r step adds Y to ix*Y while
                        // iy moves by at most Y-1 (both endpoints pass
                        // the [0, Y) bounds filter); a c step adds X*Y
                        // while ix*Y+iy stays below X*Y for in-bounds
                        // coordinates.
                        // Single-lane tiles take the tabulated counts
                        // instead (x0p == x and y0p == y there).
                        constexpr std::int64_t kAbsMask =
                            (std::int64_t{1} << 44) - 1;
                        index_t distinct;
                        bool single_lane = false;
                        if (lane1_tile) {
                            distinct = kept_tbl[static_cast<std::size_t>(
                                (f * xo + x0p) * yo + y0p)];
                        } else {
                        fetch.clear();
                        index_t lane = 0;
                        for (index_t g = g0; g < g0 + tg; ++g) {
                            for (index_t n = n0p; n < n0p + tn; ++n) {
                                const index_t nbase =
                                    (n * shape.C + g * cg) *
                                    shape.X * shape.Y;
                                for (index_t x = x0p; x < x0p + tx; ++x) {
                                    const index_t x_st = x * shape.stride;
                                    for (index_t y = y0p; y < y0p + ty;
                                         ++y, ++lane) {
                                        const index_t y_st =
                                            y * shape.stride;
                                        const std::int64_t lane_tag =
                                            lane << 44;
                                        for (index_t j = 0; j < len; ++j) {
                                            const index_t ix =
                                                x_st + rpad[j];
                                            const index_t iy =
                                                y_st + spad[j];
                                            if (ix < 0 || ix >= shape.X ||
                                                iy < 0 || iy >= shape.Y)
                                                continue;
                                            fetch.push_back(
                                                lane_tag |
                                                (nbase + cxy[j] +
                                                 ix * shape.Y + iy));
                                        }
                                    }
                                }
                            }
                        }
                        distinct = static_cast<index_t>(fetch.size());

                        // The lane-stripped footprint is only consulted
                        // by the forwarding-link reuse check below, so
                        // arrays without LMN links skip building it.
                        // With a single mapped lane the tag is zero and
                        // the list is already sorted and duplicate-free,
                        // so the sort/unique pass degenerates to a copy.
                        single_lane = lane == 1;
                        if (mn_.hasForwardingLinks()) {
                            cur_abs.clear();
                            for (const std::int64_t code : fetch)
                                cur_abs.push_back(code & kAbsMask);
                            if (!single_lane) {
                                std::sort(cur_abs.begin(), cur_abs.end());
                                cur_abs.erase(
                                    std::unique(cur_abs.begin(),
                                                cur_abs.end()),
                                    cur_abs.end());
                            }
                        }
                        }

                        // Spatio-temporal reuse over the LMN forwarding
                        // links: operands already in the array from the
                        // previous step reach their consumer through
                        // neighbour links instead of the GB.
                        index_t fresh = distinct;
                        if (input_stationary && k0 > 0) {
                            // IS dataflow: this position chunk's inputs
                            // were pinned by the first filter block.
                            fresh = 0;
                        } else if (mn_.hasForwardingLinks() && have_prev &&
                            yb > 0) {
                            if (lane1_tile) {
                                const index_t ovl = ovl_tbl[
                                    static_cast<std::size_t>(
                                        (f * xo + x0p) * yo + y0p)];
                                fresh = distinct - ovl;
                                mn_.forwardOperands(ovl);
                            } else {
                            fresh = 0;
                            if (single_lane) {
                                // Both footprints are sorted, so a
                                // two-pointer sweep replaces the
                                // per-element binary search.
                                std::size_t pi = 0;
                                const std::size_t pn = prev_abs.size();
                                for (const std::int64_t code : fetch) {
                                    while (pi < pn && prev_abs[pi] < code)
                                        ++pi;
                                    if (pi >= pn || prev_abs[pi] != code)
                                        ++fresh;
                                }
                            } else {
                                for (const std::int64_t code : fetch) {
                                    if (!std::binary_search(
                                            prev_abs.begin(),
                                            prev_abs.end(),
                                            code & kAbsMask))
                                        ++fresh;
                                }
                            }
                            mn_.forwardOperands(distinct - fresh);
                            }
                        }

                        setPhase("input streaming");
                        cycle_t dl = engine_.deliver(dn_, gb_, fresh, tk,
                                                     PackageKind::Input,
                                                     ff);

                        const index_t active_vns = tg * tk * tn * tx * ty;
                        mn_.fireMultipliers(
                            std::min(active_vns * len, cfg_.ms_size));
                        res.macs +=
                            static_cast<count_t>(active_vns * len);
                        rn_.bulkReduce(active_vns, len);

                        cycle_t drain = 0;
                        if (folding) {
                            if (!psum_spill) {
                                rn_.accumulate(active_vns);
                            } else {
                                // ART+DIST or an overflowing WS fold:
                                // psums round-trip through the GB and
                                // re-enter via the MN forwarders.
                                setPhase("psum spill");
                                drain = engine_.drain(gb_, active_vns, ff);
                                mn_.forwardPsums(active_vns);
                                if (f > 0)
                                    dl += engine_.deliver(
                                        dn_, gb_, active_vns, 1,
                                        PackageKind::Psum, ff);
                            }
                        } else {
                            setPhase("output drain");
                            drain = engine_.drain(gb_, active_vns, ff);
                        }
                        if (f + 1 == folds)
                            chunk_outputs += active_vns;

                        fold_cycles += std::max<cycle_t>(
                            {1, dl, drain});
                        if (!lane1_tile)
                            prev_abs.swap(cur_abs);
                        have_prev = true;
                    }
                    block_cycles += fold_cycles;
                    prev_fold_cycles = fold_cycles;
                }

                if (folding && !psum_spill) {
                    setPhase("output drain");
                    block_cycles += engine_.drain(gb_, chunk_outputs, ff);
                }
            }

            prev_block_cycles = block_cycles;
            res.cycles += block_cycles;
        }
    }

    // Functional results: every output reduced in canonical order so the
    // simulator output bit-matches the CPU reference. Interior columns
    // (where the whole S window is in bounds) are computed a block at a
    // time: each output still accumulates its own terms in (c, r, s)
    // order — the per-column chains are merely independent, which lets
    // the compiler overlap their serial float-add latencies — so the
    // values stay bit-identical to the scalar convOutputValue() used on
    // the edge columns.
    setPhase("functional reduce");
    {
        const index_t st = shape.stride;
        const index_t pad = shape.padding;
        const index_t oy_lo = std::min<index_t>(yo, (pad + st - 1) / st);
        index_t oy_hi = oy_lo;
        if (shape.Y - shape.S + pad >= 0)
            oy_hi = std::max(
                oy_lo, std::min<index_t>(
                           yo, (shape.Y - shape.S + pad) / st + 1));
        const index_t in_c_stride = shape.X * shape.Y;
        const index_t in_n_stride = shape.C * in_c_stride;
        constexpr index_t kBlock = 16;
        float acc[kBlock];
        for (index_t n = 0; n < shape.N; ++n) {
            for (index_t ko = 0; ko < shape.K; ++ko) {
                const index_t g = ko / shape.kPerGroup();
                const float *w =
                    weights.data() + ko * cg * shape.R * shape.S;
                const float bias_v = bias.empty() ? 0.0f : bias.at(ko);
                const float *in_n = input.data() + n * in_n_stride +
                    g * cg * in_c_stride;
                for (index_t ox = 0; ox < xo; ++ox) {
                    float *out_row = output.data() +
                        ((n * shape.K + ko) * xo + ox) * yo;
                    const index_t x_base = ox * st - pad;
                    const index_t r_lo = std::max<index_t>(0, -x_base);
                    const index_t r_hi =
                        std::min(shape.R, shape.X - x_base);
                    for (index_t oy = 0; oy < oy_lo; ++oy)
                        out_row[oy] = convOutputValue(
                            shape, input, weights, bias, n, ko, ox, oy);
                    for (index_t oy0 = oy_lo; oy0 < oy_hi;
                         oy0 += kBlock) {
                        const index_t m =
                            std::min(kBlock, oy_hi - oy0);
                        for (index_t i = 0; i < m; ++i)
                            acc[i] = 0.0f;
                        for (index_t c = 0; c < cg; ++c) {
                            const float *in_c = in_n + c * in_c_stride;
                            const float *wc =
                                w + c * shape.R * shape.S;
                            for (index_t r = r_lo; r < r_hi; ++r) {
                                const float *in_row = in_c +
                                    (x_base + r) * shape.Y +
                                    oy0 * st - pad;
                                const float *wr = wc + r * shape.S;
                                for (index_t s = 0; s < shape.S; ++s) {
                                    const float ws = wr[s];
                                    const float *ir = in_row + s;
                                    if (st == 1) {
                                        // Unit stride: adjacent
                                        // columns read adjacent input
                                        // elements. The constant-trip
                                        // groups of four below map to
                                        // one 4-float SIMD fma each
                                        // under basic-block
                                        // vectorization; per-column
                                        // accumulation order is
                                        // untouched.
                                        index_t i = 0;
                                        for (; i + 4 <= m; i += 4) {
                                            acc[i] += ws * ir[i];
                                            acc[i + 1] += ws * ir[i + 1];
                                            acc[i + 2] += ws * ir[i + 2];
                                            acc[i + 3] += ws * ir[i + 3];
                                        }
                                        for (; i < m; ++i)
                                            acc[i] += ws * ir[i];
                                    } else {
                                        for (index_t i = 0; i < m; ++i)
                                            acc[i] += ws * ir[i * st];
                                    }
                                }
                            }
                        }
                        for (index_t i = 0; i < m; ++i)
                            out_row[oy0 + i] = acc[i] + bias_v;
                    }
                    for (index_t oy = oy_hi; oy < yo; ++oy)
                        out_row[oy] = convOutputValue(
                            shape, input, weights, bias, n, ko, ox, oy);
                }
            }
        }
    }

    res.mem_accesses = gb_.totalReads() + gb_.totalWrites() - mem0;
    res.ms_utilization = res.cycles > 0
        ? static_cast<double>(mn_.multOps() - mult0) /
          (static_cast<double>(cfg_.ms_size) *
           static_cast<double>(res.cycles))
        : 0.0;
    setPhase("idle");
    return res;
}

ControllerResult
DenseController::runGemmSystolic(const Tensor &a, const Tensor &b, Tensor &c)
{
    setPhase("systolic gemm");
    auto *popn = dynamic_cast<PointToPointNetwork *>(&dn_);
    auto *lrn = dynamic_cast<LinearReductionNetwork *>(&rn_);
    fatalIf(!popn || !lrn,
            "the systolic pipeline needs a point-to-point DN and a "
            "linear RN");

    // Square array: ms_size = rows * cols.
    index_t rows = 1;
    while (rows * rows < cfg_.ms_size)
        rows <<= 1;
    const index_t cols = cfg_.ms_size / rows;
    fatalIf(gb_.readBandwidth() < rows + cols,
            "a systolic array requires full edge bandwidth (",
            rows + cols, " elements/cycle), configured ",
            gb_.readBandwidth());

    const count_t mem0 = gb_.totalReads() + gb_.totalWrites();
    const count_t mult0 = mn_.multOps();
    const index_t bpe = bytesPerElement(cfg_.data_type);

    ControllerResult res;
    // Operand staging overlaps the previous operation (double
    // buffering); traffic is still accounted.
    (void)dram_.transferCycles(
        std::min(a.size() + b.size(), gb_.capacityElements()) * bpe);

    SystolicArray array(rows, cols, *popn, mn_, *lrn, gb_);
    // The systolic inner run is closed-form in both execution modes;
    // its whole region lands on the fast-forward track with the
    // counter deltas attached.
    if (trace_ != nullptr)
        trace_->bulkBegin();
    const SystolicResult sr = array.run(a, b, c);
    if (trace_ != nullptr)
        trace_->bulkEnd(sr.cycles, "systolic.run");
    res.cycles += sr.cycles;
    res.macs = sr.macs;
    res.mem_accesses = gb_.totalReads() + gb_.totalWrites() - mem0;
    res.ms_utilization = res.cycles > 0
        ? static_cast<double>(mn_.multOps() - mult0) /
          (static_cast<double>(cfg_.ms_size) *
           static_cast<double>(res.cycles))
        : 0.0;
    setPhase("idle");
    return res;
}

ControllerResult
DenseController::runConvSystolic(const Conv2dShape &shape,
                                 const Tensor &input, const Tensor &weights,
                                 const Tensor &bias, Tensor &output)
{
    ControllerResult res;
    for (index_t g = 0; g < shape.G; ++g) {
        const Tensor a = filtersToMatrix(weights, shape, g);
        const Tensor b = im2col(input, shape, g);
        Tensor c({a.dim(0), b.dim(1)});
        ControllerResult r = runGemmSystolic(a, b, c);
        if (!bias.empty()) {
            const index_t k0 = g * shape.kPerGroup();
            for (index_t k = 0; k < c.dim(0); ++k)
                for (index_t j = 0; j < c.dim(1); ++j)
                    c.at(k, j) += bias.at(k0 + k);
        }
        col2im(c, shape, g, output);
        res.merge(r);
    }
    return res;
}

ControllerResult
DenseController::runConvolution(const LayerSpec &layer, const Tile &tile,
                                const Tensor &input, const Tensor &weights,
                                const Tensor &bias, Tensor &output)
{
    fatalIf(layer.kind != LayerKind::Convolution,
            "runConvolution expects a convolution layer");
    layer.validate();
    const Conv2dShape &c = layer.conv;
    fatalIf(output.rank() != 4 || output.dim(0) != c.N ||
            output.dim(1) != c.K || output.dim(2) != c.outX() ||
            output.dim(3) != c.outY(),
            "convolution output tensor shape mismatch");

    if (cfg_.dn_type == DnType::PointToPoint)
        return runConvSystolic(c, input, weights, bias, output);

    tile.validate(layer, cfg_.ms_size);
    return runConvFlexible(c, tile, input, weights, bias, output);
}

ControllerResult
DenseController::runGemm(const LayerSpec &layer, const Tile &tile,
                         const Tensor &a, const Tensor &b, Tensor &c)
{
    layer.validate();
    const GemmDims g = layer.gemmView();
    fatalIf(a.rank() != 2 || a.dim(0) != g.m || a.dim(1) != g.k,
            "GEMM operand A shape mismatch");
    fatalIf(b.rank() != 2 || b.dim(0) != g.k || b.dim(1) != g.n,
            "GEMM operand B shape mismatch");
    fatalIf(c.rank() != 2 || c.dim(0) != g.m || c.dim(1) != g.n,
            "GEMM output shape mismatch");

    if (cfg_.dn_type == DnType::PointToPoint)
        return runGemmSystolic(a, b, c);

    // Map the GEMM onto the convolution pipeline: M filters of a
    // 1x1x(K)-element window over an input of K channels and N output
    // columns. Tensors alias the GEMM operands (same row-major layout).
    Conv2dShape shape;
    shape.R = 1;
    shape.S = 1;
    shape.C = g.k;
    shape.K = g.m;
    shape.G = 1;
    shape.N = 1;
    shape.X = 1;
    shape.Y = g.n;

    Tile conv_tile;
    conv_tile.t_c = tile.t_c;
    conv_tile.t_k = tile.t_k;
    conv_tile.t_y = tile.t_y;

    const Tensor input = b.reshaped({1, g.k, 1, g.n});
    const Tensor weights = a.reshaped({g.m, g.k, 1, 1});
    Tensor out({1, g.m, 1, g.n});
    ControllerResult r = runConvFlexible(shape, conv_tile, input, weights,
                                         Tensor(), out);
    c = out.reshaped({g.m, g.n});
    return r;
}

ControllerResult
DenseController::runLinear(const LayerSpec &layer, const Tile &tile,
                           const Tensor &input, const Tensor &weights,
                           const Tensor &bias, Tensor &output)
{
    fatalIf(layer.kind != LayerKind::Linear,
            "runLinear expects a linear layer");
    layer.validate();
    const GemmDims g = layer.gemm; // m = out features, n = batch, k = in
    fatalIf(input.rank() != 2 || input.dim(0) != g.n || input.dim(1) != g.k,
            "linear input shape mismatch");
    fatalIf(weights.rank() != 2 || weights.dim(0) != g.m ||
            weights.dim(1) != g.k,
            "linear weight shape mismatch");
    fatalIf(output.rank() != 2 || output.dim(0) != g.n ||
            output.dim(1) != g.m,
            "linear output shape mismatch");

    // B = input^T so columns are batch samples.
    Tensor b({g.k, g.n});
    for (index_t i = 0; i < g.n; ++i)
        for (index_t j = 0; j < g.k; ++j)
            b.at(j, i) = input.at(i, j);

    Tensor c({g.m, g.n});
    LayerSpec as_gemm =
        LayerSpec::gemmLayer(layer.name + ".gemm", g.m, g.n, g.k);
    ControllerResult r = runGemm(as_gemm, tile, weights, b, c);

    for (index_t i = 0; i < g.n; ++i)
        for (index_t j = 0; j < g.m; ++j)
            output.at(i, j) =
                c.at(j, i) + (bias.empty() ? 0.0f : bias.at(j));
    return r;
}

ControllerResult
DenseController::runMaxPool(const LayerSpec &layer, const Tensor &input,
                            Tensor &output)
{
    fatalIf(layer.kind != LayerKind::MaxPool,
            "runMaxPool expects a max-pooling layer");
    fatalIf(cfg_.dn_type == DnType::PointToPoint,
            "max pooling is not mappable on the systolic composition");
    layer.validate();

    const Conv2dShape &c = layer.conv;
    const index_t w = layer.pool_window;
    const index_t st = layer.pool_stride;
    const index_t xo = (c.X - w) / st + 1;
    const index_t yo = (c.Y - w) / st + 1;
    fatalIf(output.rank() != 4 || output.dim(0) != c.N ||
            output.dim(1) != c.C || output.dim(2) != xo ||
            output.dim(3) != yo,
            "max pool output tensor shape mismatch");

    const Tile tile = mapper_.generateTile(layer);
    const index_t vn = tile.t_c;            // window slice per cluster
    const index_t tk = tile.t_k;            // channels in parallel
    const index_t ty = tile.t_y;            // positions in parallel
    const index_t window = w * w;
    const index_t folds = (window + vn - 1) / vn;

    ControllerResult res;
    const count_t mem0 = gb_.totalReads() + gb_.totalWrites();
    const count_t mult0 = mn_.multOps();

    const bool ff = fastForward();

    setPhase("max pool streaming");
    const index_t positions = c.N * xo * yo;
    std::vector<std::int64_t> fetch, prev_fetch;
    const auto step_capacity = static_cast<std::size_t>(tk * ty * vn);
    fetch.reserve(step_capacity);
    prev_fetch.reserve(step_capacity);
    // Per-fold offset table: e -> r*Y + s2, shared by every position of
    // the fold (same hoisting as the convolution fetch loop).
    std::vector<index_t> roff;
    roff.reserve(static_cast<std::size_t>(vn));

    for (index_t c0 = 0; c0 < c.C; c0 += tk) {
        const index_t tkc = std::min(tk, c.C - c0);
        bool have_prev = false;
        for (index_t p0 = 0; p0 < positions; p0 += ty) {
            const index_t typ = std::min(ty, positions - p0);
            cycle_t dl_total = 0;
            for (index_t f = 0; f < folds; ++f) {
                const index_t e0 = f * vn;
                const index_t len = std::min(vn, window - e0);
                roff.clear();
                for (index_t e = e0; e < e0 + len; ++e)
                    roff.push_back((e / w) * c.Y + e % w);
                // Sorted and duplicate-free by construction: the lane
                // tag ascends over the (ch, p) nest; within a lane every
                // window coordinate is in bounds (pooling never pads),
                // so an s2 step adds 1 and an r step adds Y - (w-1) >= 1
                // (the window fits: w <= Y).
                fetch.clear();
                index_t lane = 0;
                for (index_t ch = c0; ch < c0 + tkc; ++ch) {
                    for (index_t p = p0; p < p0 + typ; ++p, ++lane) {
                        const index_t n = p / (xo * yo);
                        const index_t ox = (p / yo) % xo;
                        const index_t oy = p % yo;
                        const index_t base =
                            ((n * c.C + ch) * c.X + ox * st) * c.Y +
                            oy * st;
                        const std::int64_t lane_tag = lane << 44;
                        for (index_t j = 0; j < len; ++j)
                            fetch.push_back(lane_tag | (base + roff[j]));
                    }
                }
                const auto distinct = static_cast<index_t>(fetch.size());
                index_t fresh = distinct;
                if (mn_.hasForwardingLinks() && have_prev && st < w) {
                    fresh = countFresh(fetch, prev_fetch);
                    mn_.forwardOperands(distinct - fresh);
                }
                dl_total += engine_.deliver(dn_, gb_, fresh, 1,
                                            PackageKind::Input, ff);
                const index_t clusters = tkc * typ;
                rn_.bulkReduce(clusters, len);
                if (folds > 1 && rn_.supportsAccumulation())
                    rn_.accumulate(clusters);
                prev_fetch.swap(fetch);
                have_prev = true;
            }
            setPhase("output drain");
            const cycle_t drain = engine_.drain(gb_, tkc * typ, ff);
            setPhase("max pool streaming");
            res.cycles += std::max<cycle_t>({1, dl_total, drain});
        }
    }
    const cycle_t fill = 1 +
        static_cast<cycle_t>(rn_.latency(std::min(vn, window))) + 1;
    res.cycles += fill;
    setPhase("pipeline fill");
    traceAdvance(fill);

    output = ref::maxPool2d(input, w, st);

    res.mem_accesses = gb_.totalReads() + gb_.totalWrites() - mem0;
    res.ms_utilization = res.cycles > 0
        ? static_cast<double>(mn_.multOps() - mult0) /
          (static_cast<double>(cfg_.ms_size) *
           static_cast<double>(res.cycles))
        : 0.0;
    setPhase("idle");
    return res;
}

} // namespace stonne
