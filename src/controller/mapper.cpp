#include "controller/mapper.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace stonne {

Mapper::Mapper(index_t ms_size)
    : ms_size_(ms_size)
{
    fatalIf(ms_size <= 0, "mapper needs a positive array size");
}

namespace {

/** Largest divisor-free allocation: min(budget, limit). */
index_t
takeDim(index_t &budget, index_t limit)
{
    const index_t v = std::min(budget, limit);
    budget = std::max<index_t>(1, budget / std::max<index_t>(1, v));
    return std::max<index_t>(1, v);
}

} // namespace

Tile
Mapper::generateTile(const LayerSpec &layer) const
{
    layer.validate();
    Tile t;

    if (layer.kind == LayerKind::Convolution) {
        const Conv2dShape &c = layer.conv;
        const index_t cg = c.cPerGroup();
        const index_t spatial = c.R * c.S;
        const index_t window = spatial * cg;
        const index_t outputs =
            c.G * c.kPerGroup() * c.N * c.outX() * c.outY();

        (void)outputs;
        // mRNA-style mapping search: for every channel slice T_C, build
        // the full candidate tile (clusters spread filters-first, then
        // groups, then output positions, then batch) and cost it as
        // folds x iteration blocks x position steps — the engine's
        // step count, including every ceil() quantization loss.
        auto blocks = [](index_t total, index_t tt) {
            return (total + tt - 1) / tt;
        };
        auto make_tile = [&](index_t tc) {
            Tile cand;
            cand.t_r = std::min(c.R, ms_size_);
            cand.t_s = std::min(
                c.S, std::max<index_t>(1, ms_size_ / cand.t_r));
            cand.t_c = tc;
            index_t budget = std::max<index_t>(
                1, ms_size_ / (cand.t_r * cand.t_s * cand.t_c));
            cand.t_k = takeDim(budget, c.kPerGroup());
            cand.t_g = takeDim(budget, c.G);
            cand.t_y = takeDim(budget, c.outY());
            cand.t_x = takeDim(budget, c.outX());
            cand.t_n = takeDim(budget, c.N);
            return cand;
        };
        auto cost_of = [&](const Tile &cand) {
            const double folds =
                static_cast<double>(cand.folds(window));
            const double steps = static_cast<double>(
                blocks(c.G, cand.t_g) * blocks(c.kPerGroup(), cand.t_k) *
                blocks(c.N, cand.t_n) * blocks(c.outX(), cand.t_x) *
                blocks(c.outY(), cand.t_y));
            return folds * steps;
        };

        const index_t max_tc =
            std::max<index_t>(1, std::min(cg, ms_size_ / spatial));
        t = make_tile(max_tc);
        double best_cost = cost_of(t);
        for (index_t tc = max_tc - 1; tc >= 1; --tc) {
            const Tile cand = make_tile(tc);
            const double cost = cost_of(cand);
            // Prefer larger clusters on near-ties: fewer folds means
            // fewer psum accumulations and weight reloads.
            if (cost < best_cost * 0.98) {
                best_cost = cost;
                t = cand;
            }
        }
    } else if (layer.kind == LayerKind::MaxPool) {
        const GemmDims g = layer.gemmView();
        t.t_c = std::min(g.k, ms_size_);
        index_t budget = std::max<index_t>(1, ms_size_ / t.t_c);
        t.t_y = takeDim(budget, g.n);
        t.t_k = takeDim(budget, g.m);
    } else {
        const GemmDims g = layer.gemmView();
        auto blocks = [](index_t total, index_t tt) {
            return (total + tt - 1) / tt;
        };
        auto make_tile = [&](index_t tc) {
            Tile cand;
            cand.t_c = tc;
            index_t budget = std::max<index_t>(1, ms_size_ / tc);
            cand.t_k = takeDim(budget, g.m);
            cand.t_y = takeDim(budget, g.n);
            return cand;
        };
        auto cost_of = [&](const Tile &cand) {
            return static_cast<double>(cand.folds(g.k)) *
                static_cast<double>(blocks(g.m, cand.t_k) *
                                    blocks(g.n, cand.t_y));
        };
        const index_t max_tc = std::max<index_t>(
            1, std::min(g.k, ms_size_));
        t = make_tile(max_tc);
        double best_cost = cost_of(t);
        for (index_t tc = max_tc - 1; tc >= 1; --tc) {
            const Tile cand = make_tile(tc);
            const double cost = cost_of(cand);
            if (cost < best_cost * 0.98) {
                best_cost = cost;
                t = cand;
            }
        }
    }

    t.validate(layer, ms_size_);
    return t;
}

MappingSignals
Mapper::signals(const LayerSpec &layer, const Tile &tile) const
{
    tile.validate(layer, ms_size_);
    MappingSignals s;
    s.vn_size = tile.vnSize();
    s.num_vns = tile.numVns();
    s.window = layer.gemmView().k;
    s.folds = tile.folds(s.window);
    s.folding = s.folds > 1;
    s.used_ms = tile.usedMs();
    s.ms_utilization =
        static_cast<double>(s.used_ms) / static_cast<double>(ms_size_);
    return s;
}

} // namespace stonne
