#include "controller/tile.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace stonne {

void
Tile::validate(const LayerSpec &layer, index_t ms_size) const
{
    fatalIf(t_r <= 0 || t_s <= 0 || t_c <= 0 || t_g <= 0 || t_k <= 0 ||
            t_n <= 0 || t_x <= 0 || t_y <= 0,
            "tile dimensions must be positive");
    fatalIf(usedMs() > ms_size, "tile occupies ", usedMs(),
            " multiplier switches but the array has ", ms_size);

    if (layer.kind == LayerKind::Convolution) {
        const Conv2dShape &c = layer.conv;
        fatalIf(t_r > c.R || t_s > c.S || t_c > c.cPerGroup(),
                "tile cluster exceeds the filter dimensions");
        fatalIf(t_g > c.G, "tile T_G exceeds layer groups");
        fatalIf(t_k > c.kPerGroup(), "tile T_K exceeds filters per group");
        fatalIf(t_n > c.N, "tile T_N exceeds batch size");
        fatalIf(t_x > c.outX() || t_y > c.outY(),
                "tile output block exceeds the layer output");
    } else {
        const GemmDims g = layer.gemmView();
        fatalIf(t_r != 1 || t_s != 1 || t_g != 1 || t_n != 1 || t_x != 1,
                "GEMM tiles use only T_C (dot slice), T_K (rows) and "
                "T_Y' (columns)");
        fatalIf(t_c > g.k, "tile T_C exceeds the GEMM dot length");
        fatalIf(t_k > g.m, "tile T_K exceeds the GEMM row count");
        fatalIf(t_y > g.n, "tile T_Y' exceeds the GEMM column count");
    }
}

std::string
Tile::canonical() const
{
    std::ostringstream os;
    os << t_r << 'x' << t_s << 'x' << t_c << 'x' << t_g << 'x' << t_k
       << 'x' << t_n << 'x' << t_x << 'x' << t_y;
    return os.str();
}

std::string
Tile::toString() const
{
    std::ostringstream os;
    os << "Tile(T_R=" << t_r << ", T_S=" << t_s << ", T_C=" << t_c
       << ", T_G=" << t_g << ", T_K=" << t_k << ", T_N=" << t_n
       << ", T_X'=" << t_x << ", T_Y'=" << t_y << ")";
    return os.str();
}

} // namespace stonne
