/**
 * @file
 * SNAPEA memory controller — use case 2's back-end extension.
 *
 * SNAPEA (SnaPEA, ISCA'18) exploits the fact that CNN activations are
 * non-negative: weights are statically reordered by sign (positives
 * first), an index table locates each reordered weight's activation, and
 * the accumulation logic performs a single-bit sign check on the partial
 * sum. Once only negative weights remain and the psum is non-positive,
 * the output is guaranteed to be cut to zero by the following ReLU, so
 * the remaining computation and memory accesses are skipped (*exact
 * mode* — no accuracy loss).
 *
 * Following the paper's implementation notes, this controller is an
 * extension of the dense controller's flexible pipeline: a new memory
 * controller consuming the reorder table, the linear multiplier network
 * in output-stationary mode, and extended accumulation logic with the
 * negative-detection cut-off.
 */

#ifndef STONNE_CONTROLLER_SNAPEA_CONTROLLER_HPP
#define STONNE_CONTROLLER_SNAPEA_CONTROLLER_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "controller/mapper.hpp"
#include "controller/result.hpp"
#include "mem/dram.hpp"
#include "mem/global_buffer.hpp"
#include "network/mn_array.hpp"
#include "network/unit.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

/**
 * Static weight reordering of SNAPEA: per filter, the indices of the
 * non-zero window weights sorted by descending value, plus the position
 * of the first strictly negative weight (the point after which a
 * non-positive psum can never recover). Pruned (zero) weights are known
 * statically and dropped from the stream — they contribute nothing to
 * the psum, for the SNAPEA architecture and its baseline alike.
 */
struct SnapeaReorderTable {
    /** Per filter: non-zero window indices in descending-weight order. */
    std::vector<std::vector<index_t>> order;

    /** Per filter: first index in `order` holding a negative weight
     *  (== order size when the filter has no negative weights). */
    std::vector<index_t> first_negative;

    /** Longest per-filter non-zero stream. */
    index_t maxLength() const;

    /** Build the table from a (K, C/G, R, S) weight tensor. */
    static SnapeaReorderTable build(const Tensor &weights);
};

class EventEngine;
class Watchdog;
class FaultInjector;
class Tracer;

/** SNAPEA-like controller with early negative cut-off (exact mode). */
class SnapeaController : public Checkpointable
{
  public:
    /**
     * @param engine the delivery/drain engine every streaming phase
     *        goes through (owned by the Accelerator) — the single
     *        place components are ticked from
     * @param watchdog optional progress watchdog ticked by the delivery
     *        and drain loops (owned by the Accelerator)
     * @param faults optional fault injector applied to the flit stream
     * @param trace optional cycle-level tracer (owned by the
     *        Accelerator when `trace = ON`)
     */
    SnapeaController(const HardwareConfig &cfg, EventEngine &engine,
                     DistributionNetwork &dn, MultiplierArray &mn,
                     ReductionNetwork &rn, GlobalBuffer &gb, Dram &dram,
                     Watchdog *watchdog = nullptr,
                     FaultInjector *faults = nullptr,
                     Tracer *trace = nullptr);

    /**
     * Run a convolution with sign-sorted weight streaming.
     *
     * @param table the prior-simulation reorder table (front-end pass)
     * @param early_exit true for the full SNAPEA architecture; false for
     *        the baseline that runs the entire execution
     * @param output (N, K, X', Y'); cut windows emit their non-positive
     *        psum, which the following ReLU zeroes — callers compare
     *        post-ReLU
     */
    ControllerResult runConvolution(const LayerSpec &layer,
                                    const Tensor &input,
                                    const Tensor &weights,
                                    const Tensor &bias,
                                    const SnapeaReorderTable &table,
                                    bool early_exit, Tensor &output);

    /** Current execution phase, exposed in watchdog deadlock reports. */
    const std::string &phase() const { return phase_; }

    /** Serialize the controller phase (see DenseController::saveState). */
    void saveState(ArchiveWriter &ar) const override
    {
        ar.putString(phase_);
    }

    void loadState(ArchiveReader &ar) override { phase_ = ar.getString(); }

  private:
    /** Change phase: watchdog reports see it, the tracer spans it. */
    void setPhase(const char *phase);

    HardwareConfig cfg_;
    EventEngine &engine_;
    DistributionNetwork &dn_;
    MultiplierArray &mn_;
    ReductionNetwork &rn_;
    GlobalBuffer &gb_;
    Dram &dram_;
    Watchdog *wd_;
    FaultInjector *faults_;
    Tracer *trace_;
    Mapper mapper_;
    std::string phase_ = "idle";
};

} // namespace stonne

#endif // STONNE_CONTROLLER_SNAPEA_CONTROLLER_HPP
