/**
 * @file
 * Cycle-by-cycle delivery of a fetch list through GB read ports + DN.
 *
 * Shared by all memory controllers: per cycle the Global Buffer grants up
 * to its read bandwidth, the distribution network injects up to its own
 * bandwidth, and the controller retries the remainder — the stall
 * mechanism that separates STONNE's timing from the analytical models.
 *
 * When fast-forwarding is enabled and no fault injector is attached the
 * loop is in steady state: every cycle moves exactly
 * min(dn_bandwidth, gb_read_bandwidth) elements, so all but the final
 * (possibly partial) cycle can be skipped with closed-form bulkAdvance()
 * counter arithmetic. The final cycle always executes through the exact
 * per-cycle path so trailing per-cycle state (budgets, issue slots) is
 * bit-identical by construction.
 */

#ifndef STONNE_CONTROLLER_DELIVERY_HPP
#define STONNE_CONTROLLER_DELIVERY_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/watchdog.hpp"
#include "faults/fault_injector.hpp"
#include "mem/global_buffer.hpp"
#include "network/unit.hpp"
#include "trace/trace.hpp"

namespace stonne {

/**
 * Count elements of sorted `cur` absent from sorted `prev` — the
 * operands that must come from the GB rather than from the multiplier
 * network's neighbour-forwarding links.
 */
inline index_t
countFresh(const std::vector<std::int64_t> &cur,
           const std::vector<std::int64_t> &prev)
{
    index_t fresh = 0;
    std::size_t i = 0, j = 0;
    while (i < cur.size()) {
        if (j >= prev.size() || cur[i] < prev[j]) {
            ++fresh;
            ++i;
        } else if (cur[i] == prev[j]) {
            ++i;
            ++j;
        } else {
            ++j;
        }
    }
    return fresh;
}

/**
 * Stream `count` elements of the same kind/fanout from the GB through
 * the DN, cycle by cycle.
 *
 * With a watchdog attached, a cycle that moves nothing counts as a stall
 * and a long enough stall run raises DeadlockError with a full fabric
 * snapshot; without one, a zero-progress cycle panics immediately (the
 * legacy behaviour, kept for bare-unit tests). A fault injector may drop
 * flits after DN acceptance: dropped flits stay in `remaining` and are
 * retransmitted on a later cycle, stretching the delivery.
 *
 * With `fast_forward` set and no fault injector, the steady-state prefix
 * is skipped in O(1): the per-cycle grant is the constant
 * min(dn.bandwidth(), gb.readBandwidth()), so the first n-1 of the
 * n = ceil(count / grant) cycles are accounted with bulkAdvance() and
 * only the final cycle runs through the exact loop. Cycle counts, stats
 * and watchdog state are bit-identical to the per-cycle path. Any fault
 * injector forces the exact loop: dropFlits() consumes the seeded RNG
 * stream per cycle and must observe every cycle to stay reproducible.
 *
 * @return the number of cycles the delivery occupied.
 */
inline cycle_t
deliverElements(DistributionNetwork &dn, GlobalBuffer &gb, index_t count,
                index_t fanout, PackageKind kind,
                Watchdog *watchdog = nullptr,
                FaultInjector *faults = nullptr,
                bool fast_forward = false,
                Tracer *trace = nullptr)
{
    // Guards are open-coded `if (...) panic(...)`: panicIf evaluates
    // its message arguments eagerly, and constructing dn.name() here
    // on every delivery is measurable on the hot path.
    if (count < 0)
        panic("delivery of ", count, " elements through '", dn.name(),
              "': count must not be negative");
    if (fanout <= 0)
        panic("delivery through '", dn.name(),
              "' with non-positive fanout ", fanout,
              " (destination range is empty)");
    if (dn.bandwidth() <= 0)
        panic("delivery through '", dn.name(),
              "' with non-positive bandwidth ", dn.bandwidth(),
              " (should have been rejected by HardwareConfig::validate)");

    // Queue-occupancy telemetry (dn.inject_queue_occ): the backlog
    // integral of the whole delivery, accounted up front in closed form
    // so exact and fast-forwarded runs see identical counter evolution
    // (per-cycle attribution would diverge at sample boundaries inside
    // a skipped steady-state region).
    dn.accountBacklog(count, std::min(dn.bandwidth(), gb.readBandwidth()));

    cycle_t cycles = 0;
    index_t remaining = count;

    if (fast_forward && faults == nullptr && remaining > 0) {
        const index_t grant = std::min(dn.bandwidth(), gb.readBandwidth());
        const cycle_t total = static_cast<cycle_t>(
            (remaining + grant - 1) / grant);
        if (total > 1) {
            const cycle_t skip = total - 1;
            const index_t moved = static_cast<index_t>(skip) * grant;
            if (trace != nullptr)
                trace->bulkBegin();
            gb.bulkAdvance(skip, moved, 0);
            dn.bulkAdvance(skip, moved, fanout, kind);
            if (watchdog != nullptr)
                watchdog->bulkTick(skip, static_cast<count_t>(grant));
            if (trace != nullptr)
                trace->bulkEnd(skip, "ff.delivery");
            remaining -= moved;
            cycles += skip;
        }
    }

    while (remaining > 0) {
        gb.nextCycle();
        dn.cycle();
        const index_t want = std::min(remaining, dn.bandwidth());
        const index_t granted = gb.readBulk(want);
        index_t sent = dn.injectBulk(granted, fanout, kind);
        index_t dropped = 0;
        if (faults != nullptr && sent > 0) {
            dropped = faults->dropFlits(sent);
            sent -= dropped;
        }
        // The trace clock advances before the watchdog may abort the
        // cycle, so a deadlock post-mortem trace includes every
        // stalled cycle; the cycle's counter activity already landed.
        if (trace != nullptr) {
            trace->tick();
            if (dropped > 0)
                trace->instant("flit_drop",
                               static_cast<count_t>(dropped));
        }
        if (watchdog != nullptr)
            watchdog->tick(static_cast<count_t>(sent));
        else if (sent <= 0)
            panic("delivery through '", dn.name(),
                  "' made no progress in a cycle");
        remaining -= sent;
        ++cycles;
    }
    return cycles;
}

/**
 * Drain `count` finished outputs through the GB write ports, cycle by
 * cycle — the write-side sibling of deliverElements(), shared by the
 * dense, sparse and SNAPEA controllers.
 *
 * Every cycle absorbs min(remaining, write_bandwidth) elements, so the
 * steady-state prefix fast-forwards exactly like delivery; the final
 * cycle always runs through the exact path.
 *
 * @return the number of cycles the drain occupied.
 */
inline cycle_t
drainOutputs(GlobalBuffer &gb, index_t count, Watchdog *watchdog = nullptr,
             bool fast_forward = false, Tracer *trace = nullptr)
{
    if (count < 0)
        panic("drain of ", count, " outputs through '", gb.name(),
              "': count must not be negative");

    // Write-queue occupancy telemetry (gb.write_queue_occ), closed form
    // for the same exact-vs-fast-forward parity reason as delivery.
    gb.accountDrainBacklog(count);

    cycle_t cycles = 0;
    index_t remaining = count;

    if (fast_forward && remaining > 0) {
        const index_t grant = gb.writeBandwidth();
        const cycle_t total = static_cast<cycle_t>(
            (remaining + grant - 1) / grant);
        if (total > 1) {
            const cycle_t skip = total - 1;
            const index_t drained = static_cast<index_t>(skip) * grant;
            if (trace != nullptr)
                trace->bulkBegin();
            gb.bulkAdvance(skip, 0, drained);
            if (watchdog != nullptr)
                watchdog->bulkTick(skip, static_cast<count_t>(grant));
            if (trace != nullptr)
                trace->bulkEnd(skip, "ff.drain");
            remaining -= drained;
            cycles += skip;
        }
    }

    while (remaining > 0) {
        gb.nextCycle();
        const index_t granted = gb.writeBulk(remaining);
        if (trace != nullptr)
            trace->tick();
        if (watchdog != nullptr)
            watchdog->tick(static_cast<count_t>(granted));
        else if (granted <= 0)
            panic("drain through '", gb.name(),
                  "' made no progress in a cycle");
        remaining -= granted;
        ++cycles;
    }
    return cycles;
}

} // namespace stonne

#endif // STONNE_CONTROLLER_DELIVERY_HPP
