/**
 * @file
 * Cycle-by-cycle delivery of a fetch list through GB read ports + DN.
 *
 * Shared by all memory controllers: per cycle the Global Buffer grants up
 * to its read bandwidth, the distribution network injects up to its own
 * bandwidth, and the controller retries the remainder — the stall
 * mechanism that separates STONNE's timing from the analytical models.
 */

#ifndef STONNE_CONTROLLER_DELIVERY_HPP
#define STONNE_CONTROLLER_DELIVERY_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/watchdog.hpp"
#include "faults/fault_injector.hpp"
#include "mem/global_buffer.hpp"
#include "network/unit.hpp"

namespace stonne {

/**
 * Count elements of sorted `cur` absent from sorted `prev` — the
 * operands that must come from the GB rather than from the multiplier
 * network's neighbour-forwarding links.
 */
inline index_t
countFresh(const std::vector<std::int64_t> &cur,
           const std::vector<std::int64_t> &prev)
{
    index_t fresh = 0;
    std::size_t i = 0, j = 0;
    while (i < cur.size()) {
        if (j >= prev.size() || cur[i] < prev[j]) {
            ++fresh;
            ++i;
        } else if (cur[i] == prev[j]) {
            ++i;
            ++j;
        } else {
            ++j;
        }
    }
    return fresh;
}

/**
 * Stream `count` elements of the same kind/fanout from the GB through
 * the DN, cycle by cycle.
 *
 * With a watchdog attached, a cycle that moves nothing counts as a stall
 * and a long enough stall run raises DeadlockError with a full fabric
 * snapshot; without one, a zero-progress cycle panics immediately (the
 * legacy behaviour, kept for bare-unit tests). A fault injector may drop
 * flits after DN acceptance: dropped flits stay in `remaining` and are
 * retransmitted on a later cycle, stretching the delivery.
 *
 * @return the number of cycles the delivery occupied.
 */
inline cycle_t
deliverElements(DistributionNetwork &dn, GlobalBuffer &gb, index_t count,
                index_t fanout, PackageKind kind,
                Watchdog *watchdog = nullptr,
                FaultInjector *faults = nullptr)
{
    panicIf(count < 0, "negative delivery count");
    cycle_t cycles = 0;
    index_t remaining = count;
    while (remaining > 0) {
        gb.nextCycle();
        dn.cycle();
        const index_t want = std::min(remaining, dn.bandwidth());
        const index_t granted = gb.readBulk(want);
        index_t sent = dn.injectBulk(granted, fanout, kind);
        if (faults != nullptr && sent > 0)
            sent -= faults->dropFlits(sent);
        if (watchdog != nullptr)
            watchdog->tick(static_cast<count_t>(sent));
        else
            panicIf(sent <= 0, "delivery made no progress in a cycle");
        remaining -= sent;
        ++cycles;
    }
    return cycles;
}

} // namespace stonne

#endif // STONNE_CONTROLLER_DELIVERY_HPP
