#include "controller/snapea_controller.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "controller/tile.hpp"
#include "engine/event_engine.hpp"

namespace stonne {

index_t
SnapeaReorderTable::maxLength() const
{
    index_t m = 0;
    for (const auto &ord : order)
        m = std::max(m, static_cast<index_t>(ord.size()));
    return m;
}

SnapeaReorderTable
SnapeaReorderTable::build(const Tensor &weights)
{
    fatalIf(weights.rank() != 4, "reorder table expects rank-4 weights");
    const index_t k = weights.dim(0);
    const index_t window = weights.dim(1) * weights.dim(2) * weights.dim(3);

    SnapeaReorderTable t;
    t.order.resize(static_cast<std::size_t>(k));
    t.first_negative.resize(static_cast<std::size_t>(k));
    for (index_t f = 0; f < k; ++f) {
        auto &ord = t.order[static_cast<std::size_t>(f)];
        const float *w = weights.data() + f * window;
        for (index_t i = 0; i < window; ++i)
            if (w[i] != 0.0f)
                ord.push_back(i);
        // Positives first (largest first), then negatives with the
        // largest magnitude first: once only negatives remain, the
        // psum should cross zero as early as possible.
        std::stable_sort(ord.begin(), ord.end(),
                         [w](index_t a, index_t b) {
                             const bool pa = w[a] > 0.0f;
                             const bool pb = w[b] > 0.0f;
                             if (pa != pb)
                                 return pa;
                             return pa ? w[a] > w[b] : w[a] < w[b];
                         });
        auto first_neg = static_cast<index_t>(ord.size());
        for (std::size_t i = 0; i < ord.size(); ++i) {
            if (w[ord[i]] < 0.0f) {
                first_neg = static_cast<index_t>(i);
                break;
            }
        }
        t.first_negative[static_cast<std::size_t>(f)] = first_neg;
    }
    return t;
}

SnapeaController::SnapeaController(const HardwareConfig &cfg,
                                   EventEngine &engine,
                                   DistributionNetwork &dn,
                                   MultiplierArray &mn, ReductionNetwork &rn,
                                   GlobalBuffer &gb, Dram &dram,
                                   Watchdog *watchdog, FaultInjector *faults,
                                   Tracer *trace)
    : cfg_(cfg), engine_(engine), dn_(dn), mn_(mn), rn_(rn), gb_(gb),
      dram_(dram), wd_(watchdog), faults_(faults), trace_(trace),
      mapper_(cfg.ms_size)
{
    cfg_.validate();
    fatalIf(cfg_.controller_type != ControllerType::Snapea,
            "SNAPEA controller instantiated for a ",
            controllerTypeName(cfg_.controller_type), " configuration");
}

void
SnapeaController::setPhase(const char *phase)
{
    phase_ = phase;
    if (trace_ != nullptr)
        trace_->setPhase(phase_);
}

ControllerResult
SnapeaController::runConvolution(const LayerSpec &layer, const Tensor &input,
                                 const Tensor &weights, const Tensor &bias,
                                 const SnapeaReorderTable &table,
                                 bool early_exit, Tensor &output)
{
    fatalIf(layer.kind != LayerKind::Convolution,
            "SNAPEA controller runs convolutions");
    layer.validate();
    const Conv2dShape &shape = layer.conv;
    const index_t cg = shape.cPerGroup();
    const index_t kg = shape.kPerGroup();
    const index_t xo = shape.outX();
    const index_t yo = shape.outY();
    const index_t window = shape.R * shape.S * cg;
    fatalIf(static_cast<index_t>(table.order.size()) != shape.K,
            "reorder table filter count mismatch");
    fatalIf(output.rank() != 4 || output.dim(0) != shape.N ||
            output.dim(1) != shape.K || output.dim(2) != xo ||
            output.dim(3) != yo,
            "SNAPEA output tensor shape mismatch");

    // SNAPEA mapping: each window streams through a short vector lane
    // (kVectorWidth MACs per check) so the single-bit sign check fires
    // periodically; the remaining switches run more windows in
    // parallel.
    constexpr index_t kVectorWidth = 8;
    const index_t vn = std::min<index_t>(window, kVectorWidth);
    index_t lane_budget = std::max<index_t>(1, cfg_.ms_size / vn);
    auto take = [&lane_budget](index_t limit) {
        const index_t v =
            std::max<index_t>(1, std::min(lane_budget, limit));
        lane_budget = std::max<index_t>(1, lane_budget / v);
        return v;
    };
    Tile tile;
    tile.t_r = 1;
    tile.t_s = 1;
    tile.t_c = vn;
    tile.t_k = take(kg);
    tile.t_y = take(yo);
    tile.t_x = take(xo);
    tile.t_n = take(shape.N);
    tile.t_g = take(shape.G);
    // Streams cover only the non-zero weights (pruned weights are
    // dropped statically by the reorder table).
    const index_t max_stream = std::max<index_t>(1, table.maxLength());
    const index_t folds = (max_stream + vn - 1) / vn;
    const index_t bpe = bytesPerElement(cfg_.data_type);

    ControllerResult res;
    const count_t mem0 = gb_.totalReads() + gb_.totalWrites();
    const count_t mult0 = mn_.multOps();

    // Traffic accounted; the cold-start transfer is hidden by the
    // double-buffered prefetch.
    (void)dram_.transferCycles(
        std::min(input.size() + weights.size(),
                 gb_.capacityElements()) * bpe);

    // Fault injection consumes a seeded RNG stream per cycle, so any
    // attached injector forces the exact per-cycle loops.
    const bool ff = cfg_.fast_forward && faults_ == nullptr;

    auto blocks = [](index_t total, index_t t) {
        return (total + t - 1) / t;
    };
    const index_t nbx = blocks(xo, tile.t_x);
    const index_t nby = blocks(yo, tile.t_y);
    const index_t nbn = blocks(shape.N, tile.t_n);
    const index_t total_steps = nbn * nbx * nby;

    // Per-cluster state within one step: one virtual neuron per mapped
    // (filter, position) pair.
    struct VnState {
        index_t ko = 0;           //!< global filter index
        index_t n = 0, ox = 0, oy = 0;
        float psum = 0.0f;
        bool active = true;
    };
    std::vector<VnState> vns;
    std::vector<std::int64_t> fetch;
    vns.reserve(static_cast<std::size_t>(
        tile.t_g * tile.t_k * tile.t_n * tile.t_x * tile.t_y));
    fetch.reserve(vns.capacity() * static_cast<std::size_t>(vn));

    for (index_t g0 = 0; g0 < shape.G; g0 += tile.t_g) {
        const index_t tg = std::min(tile.t_g, shape.G - g0);
        for (index_t k0 = 0; k0 < kg; k0 += tile.t_k) {
            const index_t tk = std::min(tile.t_k, kg - k0);
            for (index_t s = 0; s < total_steps; ++s) {
                const index_t yb = s % nby;
                const index_t xb = (s / nby) % nbx;
                const index_t nb = s / (nby * nbx);
                const index_t y0p = yb * tile.t_y;
                const index_t x0p = xb * tile.t_x;
                const index_t n0p = nb * tile.t_n;
                const index_t ty = std::min(tile.t_y, yo - y0p);
                const index_t tx = std::min(tile.t_x, xo - x0p);
                const index_t tn = std::min(tile.t_n, shape.N - n0p);

                vns.clear();
                for (index_t g = g0; g < g0 + tg; ++g)
                    for (index_t k = k0; k < k0 + tk; ++k)
                        for (index_t n = n0p; n < n0p + tn; ++n)
                            for (index_t x = x0p; x < x0p + tx; ++x)
                                for (index_t y = y0p; y < y0p + ty; ++y) {
                                    VnState v;
                                    v.ko = g * kg + k;
                                    v.n = n;
                                    v.ox = x;
                                    v.oy = y;
                                    v.psum = bias.empty()
                                        ? 0.0f : bias.at(v.ko);
                                    vns.push_back(v);
                                }

                // Pipeline fill for this step's reduction clusters.
                const cycle_t fill = 1 +
                    static_cast<cycle_t>(
                        rn_.latency(std::min(vn, window))) + 1;
                res.cycles += fill;
                setPhase("pipeline fill");
                if (trace_ != nullptr)
                    trace_->advance(fill);

                for (index_t f = 0; f < folds; ++f) {
                    const index_t e0 = f * vn;

                    // Which filters still stream weights this fold?
                    index_t streaming_filters = 0;
                    index_t stream_elems = 0;
                    {
                        index_t last_ko = -1;
                        for (const VnState &v : vns) {
                            if (!v.active || v.ko == last_ko)
                                continue;
                            const auto len_k = static_cast<index_t>(
                                table.order[static_cast<std::size_t>(
                                    v.ko)].size());
                            if (e0 >= len_k)
                                continue;
                            ++streaming_filters;
                            stream_elems +=
                                std::min(vn, len_k - e0);
                            last_ko = v.ko;
                        }
                    }
                    if (streaming_filters == 0)
                        break;

                    // Sorted-order gather of this fold's activations for
                    // every active window, deduplicated (shared inputs
                    // multicast through the DN).
                    fetch.clear();
                    index_t active_vns = 0;
                    for (VnState &v : vns) {
                        if (!v.active)
                            continue;
                        const auto &ord = table.order[
                            static_cast<std::size_t>(v.ko)];
                        const auto len_k =
                            static_cast<index_t>(ord.size());
                        if (e0 >= len_k)
                            continue;
                        ++active_vns;
                        const index_t g = v.ko / kg;
                        const index_t e_end =
                            std::min(e0 + vn, len_k);
                        for (index_t e = e0; e < e_end; ++e) {
                            const index_t we =
                                ord[static_cast<std::size_t>(e)];
                            const index_t c = we / (shape.R * shape.S);
                            const index_t rem = we % (shape.R * shape.S);
                            const index_t r = rem / shape.S;
                            const index_t s2 = rem % shape.S;
                            const index_t ix =
                                v.ox * shape.stride + r - shape.padding;
                            const index_t iy =
                                v.oy * shape.stride + s2 - shape.padding;
                            if (ix < 0 || ix >= shape.X || iy < 0 ||
                                iy >= shape.Y)
                                continue;
                            fetch.push_back(
                                ((v.n * shape.C + g * cg + c) * shape.X +
                                 ix) * shape.Y + iy);
                        }
                    }
                    std::sort(fetch.begin(), fetch.end());
                    fetch.erase(std::unique(fetch.begin(), fetch.end()),
                                fetch.end());

                    setPhase("sorted weight streaming");
                    cycle_t dl = engine_.deliver(
                        dn_, gb_, stream_elems, tn * tx * ty,
                        PackageKind::Weight, ff);
                    setPhase("activation gather");
                    dl += engine_.deliver(
                        dn_, gb_, static_cast<index_t>(fetch.size()), 1,
                        PackageKind::Input, ff);

                    // Compute and sign-check.
                    index_t fired = 0;
                    for (VnState &v : vns) {
                        if (!v.active)
                            continue;
                        const auto &ord = table.order[
                            static_cast<std::size_t>(v.ko)];
                        const auto len_k =
                            static_cast<index_t>(ord.size());
                        if (e0 >= len_k)
                            continue;
                        const index_t g = v.ko / kg;
                        const float *w = weights.data() + v.ko * window;
                        const index_t e_end =
                            std::min(e0 + vn, len_k);
                        for (index_t e = e0; e < e_end; ++e) {
                            const index_t we =
                                ord[static_cast<std::size_t>(e)];
                            const index_t c = we / (shape.R * shape.S);
                            const index_t rem = we % (shape.R * shape.S);
                            const index_t r = rem / shape.S;
                            const index_t s2 = rem % shape.S;
                            const index_t ix =
                                v.ox * shape.stride + r - shape.padding;
                            const index_t iy =
                                v.oy * shape.stride + s2 - shape.padding;
                            float x = 0.0f;
                            if (ix >= 0 && ix < shape.X && iy >= 0 &&
                                iy < shape.Y)
                                x = input.at(v.n, g * cg + c, ix, iy);
                            v.psum += w[we] * x;
                        }
                        fired += e_end - e0;
                        rn_.reduceCluster(e_end - e0);

                        // Exact-mode cut-off: only negative weights left
                        // and a non-positive psum can never recover
                        // (activations are non-negative).
                        if (early_exit && e_end < len_k &&
                            e_end >= table.first_negative[
                                static_cast<std::size_t>(v.ko)] &&
                            v.psum <= 0.0f) {
                            v.active = false;
                            res.skipped_macs += static_cast<count_t>(
                                len_k - e_end);
                        }
                    }
                    mn_.fireMultipliers(std::min(fired, cfg_.ms_size));
                    res.macs += static_cast<count_t>(fired);
                    rn_.accumulate(active_vns);

                    res.cycles += std::max<cycle_t>(1, dl);
                }

                // Drain: every mapped window emits its psum (cut windows
                // emit the non-positive value the ReLU will zero).
                setPhase("output drain");
                res.cycles += engine_.drain(
                    gb_, static_cast<index_t>(vns.size()), ff);
                for (const VnState &v : vns)
                    output.at(v.n, v.ko, v.ox, v.oy) = v.psum;
            }
        }
    }

    res.mem_accesses = gb_.totalReads() + gb_.totalWrites() - mem0;
    res.ms_utilization = res.cycles > 0
        ? static_cast<double>(mn_.multOps() - mult0) /
          (static_cast<double>(cfg_.ms_size) *
           static_cast<double>(res.cycles))
        : 0.0;
    setPhase("idle");
    return res;
}

} // namespace stonne
