/**
 * @file
 * Layer descriptor: what the DL front-end asks the accelerator to run.
 *
 * Follows the paper's 7-parameter layer definition
 * Layer(R, S, C, K, G, N, X', Y') for convolutions, with GEMM views for
 * linear layers / matrix multiplications and pooling parameters for the
 * MaxPool mapping. Every STONNE API Configure* instruction carries one of
 * these.
 */

#ifndef STONNE_CONTROLLER_LAYER_HPP
#define STONNE_CONTROLLER_LAYER_HPP

#include <string>

#include "tensor/im2col.hpp"

namespace stonne {

/** Operation classes the STONNE API can configure (Table III). */
enum class LayerKind {
    Convolution, //!< ConfigureCONV
    Linear,      //!< ConfigureLinear
    Gemm,        //!< ConfigureDMM (dense matrix multiplication)
    SparseGemm,  //!< ConfigureSpMM
    MaxPool,     //!< ConfigureMaxPool
};

const char *layerKindName(LayerKind k);

/** GEMM view of any layer: C(M x N) += A(M x K) * B(K x N). */
struct GemmDims {
    index_t m = 1; //!< rows of the stationary operand (filters)
    index_t n = 1; //!< streamed output columns (positions / batch)
    index_t k = 1; //!< dot-product length
};

/** One operation offloaded to the simulated accelerator. */
struct LayerSpec {
    std::string name = "layer";
    LayerKind kind = LayerKind::Convolution;

    /** Convolution shape; also carries pooling spatial dims. */
    Conv2dShape conv;

    /** GEMM dims for Linear / Gemm / SparseGemm layers. */
    GemmDims gemm;

    /** Pooling parameters for MaxPool layers. */
    index_t pool_window = 2;
    index_t pool_stride = 2;

    /** Make a convolution layer spec. */
    static LayerSpec convolution(std::string name, Conv2dShape shape);

    /** Make a fully-connected layer spec (batch x in -> batch x out). */
    static LayerSpec linear(std::string name, index_t batch, index_t in,
                            index_t out);

    /** Make a dense GEMM layer spec. */
    static LayerSpec gemmLayer(std::string name, index_t m, index_t n,
                               index_t k);

    /** Make a sparse GEMM layer spec. */
    static LayerSpec sparseGemm(std::string name, index_t m, index_t n,
                                index_t k);

    /** Make a max-pooling layer spec. */
    static LayerSpec maxPool(std::string name, Conv2dShape input_shape,
                             index_t window, index_t stride);

    /**
     * The GEMM view of this layer: for convolutions, the per-group
     * im2col dimensions (M = K/G filters, N = N*X'*Y' positions,
     * K = R*S*C/G); identity for GEMM-kind layers.
     */
    GemmDims gemmView() const;

    /** Multiply-accumulate operations of the dense computation. */
    index_t macs() const;

    /** Validate the spec, throwing FatalError on inconsistencies. */
    void validate() const;
};

} // namespace stonne

#endif // STONNE_CONTROLLER_LAYER_HPP
