/**
 * @file
 * Dense memory controller (Section IV-B).
 *
 * Orchestrates data based on a fixed tile partition (mRNA-style): the
 * Tile defines clusters (virtual neurons) of T_R*T_S*T_C multipliers and
 * T_G*T_K*T_N*T_X'*T_Y' clusters mapped simultaneously. Folding iterates
 * a cluster over a larger dot product, accumulating psums at the RN
 * collection point (ART+ACC / FAN / LRN) or round-tripping them through
 * the GB for the plain ART+DIST.
 *
 * The controller implements both the flexible pipeline (tree / Benes DN)
 * and the rigid systolic pipeline (point-to-point DN) — the composition
 * is selected from the hardware configuration, as in Table IV.
 *
 * Timing is simulated cycle by cycle: each compute step's fetch list is
 * deduplicated against multicast (sharing across T_K clusters) and
 * neighbour-forwarding reuse (LMN sliding window), then streamed through
 * the bandwidth-limited GB/DN pipeline. Functional values bit-match the
 * CPU reference because every output is reduced in canonical
 * (channel, row, column) order.
 */

#ifndef STONNE_CONTROLLER_DENSE_CONTROLLER_HPP
#define STONNE_CONTROLLER_DENSE_CONTROLLER_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "controller/mapper.hpp"
#include "controller/result.hpp"
#include "mem/dram.hpp"
#include "mem/global_buffer.hpp"
#include "network/mn_array.hpp"
#include "network/unit.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

class EventEngine;
class Watchdog;
class FaultInjector;
class Tracer;

/** mRNA-style fixed-tile dense memory controller. */
class DenseController : public Checkpointable
{
  public:
    /**
     * @param engine the delivery/drain engine every streaming phase
     *        goes through (owned by the Accelerator) — the single
     *        place components are ticked from
     * @param watchdog optional progress watchdog ticked by the delivery
     *        and drain loops (owned by the Accelerator)
     * @param faults optional fault injector applied to the flit stream
     * @param trace optional cycle-level tracer (owned by the
     *        Accelerator when `trace = ON`)
     */
    DenseController(const HardwareConfig &cfg, EventEngine &engine,
                    DistributionNetwork &dn, MultiplierArray &mn,
                    ReductionNetwork &rn, GlobalBuffer &gb, Dram &dram,
                    Watchdog *watchdog = nullptr,
                    FaultInjector *faults = nullptr,
                    Tracer *trace = nullptr);

    /**
     * Run a convolution layer.
     * @param input (N, C, X, Y); @param weights (K, C/G, R, S)
     * @param bias (K) or empty; @param output out, (N, K, X', Y')
     */
    ControllerResult runConvolution(const LayerSpec &layer, const Tile &tile,
                                    const Tensor &input,
                                    const Tensor &weights, const Tensor &bias,
                                    Tensor &output);

    /** Run a dense GEMM: c(M x N) = a(M x K) * b(K x N). */
    ControllerResult runGemm(const LayerSpec &layer, const Tile &tile,
                             const Tensor &a, const Tensor &b, Tensor &c);

    /**
     * Run a fully-connected layer.
     * @param input (N, C); @param weights (K, C); @param bias (K) or
     * empty; @param output out, (N, K)
     */
    ControllerResult runLinear(const LayerSpec &layer, const Tile &tile,
                               const Tensor &input, const Tensor &weights,
                               const Tensor &bias, Tensor &output);

    /**
     * Run max pooling on the flexible fabric (MAX-configured RN
     * clusters). Unsupported on the systolic composition.
     * @param input (N, C, X, Y); @param output out, (N, C, X', Y')
     */
    ControllerResult runMaxPool(const LayerSpec &layer, const Tensor &input,
                                Tensor &output);

    const Mapper &mapper() const { return mapper_; }

    /** Current execution phase, exposed in watchdog deadlock reports. */
    const std::string &phase() const { return phase_; }

    /**
     * Serialize the controller phase. Delivery cursors are
     * operation-local (checkpoints land at operation boundaries, where
     * the controller is quiescent), so the phase is the only state
     * that crosses a snapshot.
     */
    void saveState(ArchiveWriter &ar) const override
    {
        ar.putString(phase_);
    }

    void loadState(ArchiveReader &ar) override
    {
        phase_ = ar.getString();
        phase_tag_ = nullptr;
    }

  protected:
    /** Flexible-pipeline convolution (tree / Benes DN). */
    ControllerResult runConvFlexible(const Conv2dShape &shape,
                                     const Tile &tile, const Tensor &input,
                                     const Tensor &weights,
                                     const Tensor &bias, Tensor &output);

    /** Rigid systolic convolution (im2col + OS array). */
    ControllerResult runConvSystolic(const Conv2dShape &shape,
                                     const Tensor &input,
                                     const Tensor &weights,
                                     const Tensor &bias, Tensor &output);

    /** Systolic GEMM with stats plumbing. */
    ControllerResult runGemmSystolic(const Tensor &a, const Tensor &b,
                                     Tensor &c);

    /** Canonical-order dot product of one output window. */
    static float convOutputValue(const Conv2dShape &shape,
                                 const Tensor &input, const Tensor &weights,
                                 const Tensor &bias, index_t n, index_t ko,
                                 index_t ox, index_t oy);

    /**
     * Whether the steady-state fast path is eligible: requested by the
     * configuration and no fault injector attached (fault injection
     * consumes a seeded RNG stream per cycle, so every cycle must run
     * through the exact loop to stay reproducible).
     */
    bool
    fastForward() const
    {
        return cfg_.fast_forward && faults_ == nullptr;
    }

    /** Change phase: watchdog reports see it, the tracer spans it. */
    void setPhase(const char *phase);

    /** Advance the trace clock over a closed-form region (if tracing). */
    void traceAdvance(cycle_t cycles);

    const HardwareConfig &config() const { return cfg_; }
    DistributionNetwork &dn() { return dn_; }
    MultiplierArray &mn() { return mn_; }
    ReductionNetwork &rn() { return rn_; }
    GlobalBuffer &gb() { return gb_; }
    Dram &dram() { return dram_; }

  private:
    HardwareConfig cfg_;
    EventEngine &engine_;
    DistributionNetwork &dn_;
    MultiplierArray &mn_;
    ReductionNetwork &rn_;
    GlobalBuffer &gb_;
    Dram &dram_;
    Watchdog *wd_;
    FaultInjector *faults_;
    Tracer *trace_;
    Mapper mapper_;
    std::string phase_ = "idle";
    //! Literal last passed to setPhase(), for a cheap same-phase check.
    const char *phase_tag_ = nullptr;
};

} // namespace stonne

#endif // STONNE_CONTROLLER_DENSE_CONTROLLER_HPP
