/**
 * @file
 * Mapper: generates tile configurations and reconfiguration signals.
 *
 * The paper's Mapper inspects the configured microarchitecture modules
 * and the DNN layer type/shape, and produces the signals the
 * Configuration Unit uses to set up the fabrics at runtime (mRNA-style
 * mapping space). Here the mapper both auto-generates a good tile when
 * the user supplies none and derives the per-layer mapping signals the
 * engines consume.
 */

#ifndef STONNE_CONTROLLER_MAPPER_HPP
#define STONNE_CONTROLLER_MAPPER_HPP

#include "controller/tile.hpp"

namespace stonne {

/** Signals derived from a (layer, tile) pair for the engines. */
struct MappingSignals {
    index_t vn_size = 1;     //!< cluster dot-product slice
    index_t num_vns = 1;     //!< clusters mapped at once
    index_t folds = 1;       //!< folding steps to cover the window
    index_t window = 1;      //!< full dot-product length (R*S*Cg / K)
    bool folding = false;    //!< whether psum accumulation is needed
    index_t used_ms = 1;     //!< multiplier switches occupied
    double ms_utilization = 0.0; //!< used_ms / ms_size
};

/** Tile generator + signal derivation. */
class Mapper
{
  public:
    explicit Mapper(index_t ms_size);

    /**
     * Choose a tile for the layer: maximize mapped clusters with the
     * whole window per cluster when it fits; otherwise map one
     * ms_size-wide cluster and fold.
     */
    Tile generateTile(const LayerSpec &layer) const;

    /** Derive engine signals from an explicit (layer, tile) pair. */
    MappingSignals signals(const LayerSpec &layer, const Tile &tile) const;

    index_t msSize() const { return ms_size_; }

  private:
    index_t ms_size_;
};

} // namespace stonne

#endif // STONNE_CONTROLLER_MAPPER_HPP
