#include "service/envelope.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <thread>

#include "checkpoint/archive.hpp"
#include "checkpoint/checkpoint.hpp"
#include "common/watchdog.hpp"
#include "controller/mapper.hpp"
#include "engine/workload.hpp"

namespace stonne::service {

namespace {

using Clock = std::chrono::steady_clock;

/** Data-policy key part, byte-compatible with the tuner's. */
std::string
policyText(std::uint64_t seed, double sparsity)
{
    std::ostringstream os;
    os << "seed=" << seed << " sparsity=" << sparsity;
    return os.str();
}

/**
 * Whether a job's outcome is fully determined by the cache key (and
 * therefore safe to serve warm): dense controller, a single tiled
 * operation, deterministic execution (no fault injection).
 */
bool
cacheable(const HardwareConfig &cfg, const LayerSpec &layer,
          index_t repeat, const EnvelopeOptions &opts)
{
    return opts.cache != nullptr && opts.use_cache && repeat == 1 &&
           cfg.controller_type == ControllerType::Dense &&
           !cfg.faults.enabled &&
           (layer.kind == LayerKind::Convolution ||
            layer.kind == LayerKind::Linear ||
            layer.kind == LayerKind::Gemm);
}

void
removeSnapshot(const std::string &path)
{
    if (path.empty())
        return;
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::filesystem::remove(path + ".tmp", ec);
}

void
writeSnapshot(const Stonne &st, const std::string &path, index_t ops_done,
              const SimulationResult &merged)
{
    ArchiveWriter ar;
    st.saveCheckpointTo(ar, kCheckpointKindServiceJob);
    ar.beginSection("service_job");
    ar.putU64(static_cast<std::uint64_t>(ops_done));
    saveSimulationResult(ar, merged);
    ar.endSection();
    ar.writeFile(path);
}

} // namespace

JobOutcome
runJobEnvelope(const HardwareConfig &cfg, const LayerSpec &layer,
               const std::optional<Tile> &tile, std::uint64_t seed,
               double sparsity, index_t repeat,
               const EnvelopeOptions &opts)
{
    JobOutcome out;
    const int max_attempts = std::max(1, opts.max_attempts);

    std::optional<Clock::time_point> deadline;
    if (opts.budget_wall_ms > 0)
        deadline = Clock::now() +
                   std::chrono::milliseconds(opts.budget_wall_ms);

    // Side-effect knobs are silenced for service jobs: workers must
    // never race on shared trace/checkpoint files, and a service job
    // never re-enters the tuner implicitly.
    HardwareConfig job_cfg = cfg;
    job_cfg.trace = false;
    job_cfg.checkpoint = false;
    job_cfg.autotune = false;

    // Warm answer from the shared cache?
    std::string cache_key;
    const bool may_cache = cacheable(job_cfg, layer, repeat, opts);
    if (may_cache) {
        const Tile key_tile =
            tile ? *tile : Mapper(job_cfg.ms_size).generateTile(layer);
        cache_key = dse::ResultCache::keyText(job_cfg, layer, key_tile,
                                              policyText(seed, sparsity));
        if (const auto hit = opts.cache->lookup(cache_key)) {
            out.status = "done";
            out.cache_hit = true;
            out.cached = *hit;
            return out;
        }
    }

    const bool snapshots =
        !opts.snapshot_path.empty() && repeat > 1;

    LayerData data;
    try {
        data = makeLayerData(layer, sparsity, seed);
    } catch (const std::exception &e) {
        out.attempts = 1;
        out.failures.push_back({1, e.what()});
        out.error = e.what();
        return out;
    }

    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        out.attempts = attempt;
        const bool degraded = max_attempts > 1 && attempt == max_attempts;
        out.degraded = degraded;
        HardwareConfig acfg = job_cfg;
        if (degraded) {
            acfg.fast_forward = false;
            acfg.watchdog_cycles *= 4;
        }
        try {
            if (deadline && Clock::now() > *deadline)
                throw BudgetExceededError(
                    BudgetExceededError::Kind::WallClock,
                    "wall-clock budget exhausted before attempt " +
                        std::to_string(attempt));

            Stonne st(acfg);
            st.setAutoCheckpoint(false);
            st.accelerator().watchdog().setWallDeadline(deadline);

            index_t ops_done = 0;
            SimulationResult merged;
            if (snapshots &&
                std::filesystem::exists(opts.snapshot_path)) {
                try {
                    ArchiveReader ar(opts.snapshot_path);
                    st.loadCheckpointFrom(ar);
                    ar.enterSection("service_job");
                    ops_done = static_cast<index_t>(ar.getU64());
                    merged = loadSimulationResult(ar);
                    ar.leaveSection();
                    out.ops_resumed = ops_done;
                } catch (const CheckpointError &) {
                    // Corrupt or mismatched snapshot: discard it and
                    // restart the attempt clean on a fresh instance —
                    // the partial restore may have touched state.
                    removeSnapshot(opts.snapshot_path);
                    throw;
                }
            }

            for (; ops_done < repeat; ++ops_done) {
                const SimulationResult r = runLayer(st, layer, data, tile);
                if (ops_done == 0 && out.ops_resumed == 0)
                    merged = r;
                else
                    merged.merge(r);
                if (snapshots && ops_done + 1 < repeat)
                    writeSnapshot(st, opts.snapshot_path, ops_done + 1,
                                  merged);
            }

            out.status = "done";
            out.result = merged;
            const Tensor &output = st.output();
            out.output_crc32 = crc32(
                reinterpret_cast<const std::uint8_t *>(output.data()),
                static_cast<std::size_t>(output.size()) * sizeof(float));
            if (snapshots)
                removeSnapshot(opts.snapshot_path);
            if (may_cache)
                opts.cache->insert(
                    cache_key,
                    dse::CachedOutcome{merged.cycles,
                                       merged.energy.total(),
                                       merged.area.total(),
                                       merged.ms_utilization});
            return out;
        } catch (const BudgetExceededError &e) {
            // Terminal: the run was making progress, only slower than
            // the budget allows. A retry would only burn more budget.
            out.failures.push_back({attempt, e.what()});
            out.status = "timeout";
            out.error = e.what();
            return out;
        } catch (const DeadlockError &e) {
            out.failures.push_back({attempt, e.what()});
            if (attempt == max_attempts) {
                out.error = e.what();
                return out;
            }
        } catch (const CheckpointError &e) {
            out.failures.push_back({attempt, e.what()});
            if (attempt == max_attempts) {
                out.error = e.what();
                return out;
            }
        } catch (const std::exception &e) {
            // Deterministic failure (config conflict, shape mismatch):
            // retrying cannot change the outcome.
            out.failures.push_back({attempt, e.what()});
            out.error = e.what();
            return out;
        }

        // Bounded exponential backoff before the next attempt.
        const bool next_degraded =
            max_attempts > 1 && attempt + 1 == max_attempts;
        if (opts.on_retry)
            opts.on_retry(attempt + 1, out.failures.back().cause,
                          next_degraded);
        if (opts.backoff_base.count() > 0) {
            auto delay = opts.backoff_base * (1 << std::min(attempt - 1,
                                                            10));
            delay = std::min<std::chrono::milliseconds>(delay,
                                                        opts.backoff_cap);
            if (deadline && Clock::now() + delay > *deadline) {
                out.status = "timeout";
                out.error = "wall-clock budget exhausted during retry "
                            "backoff";
                return out;
            }
            std::this_thread::sleep_for(delay);
        }
    }
    return out; // unreachable: every path above returns
}

ModelJobOutcome
runModelJobEnvelope(const DnnModel &model, const HardwareConfig &cfg,
                    const std::vector<Tensor> &inputs,
                    const ModelEnvelopeOptions &opts)
{
    ModelJobOutcome out;
    const int max_attempts = std::max(1, opts.max_attempts);

    std::optional<Clock::time_point> deadline;
    if (opts.budget_wall_ms > 0)
        deadline = Clock::now() +
                   std::chrono::milliseconds(opts.budget_wall_ms);

    HardwareConfig job_cfg = cfg;
    job_cfg.trace = false;
    job_cfg.autotune = false;
    if (!opts.snapshot_path.empty()) {
        job_cfg.checkpoint = true;
        job_cfg.checkpoint_file = opts.snapshot_path;
    } else {
        job_cfg.checkpoint = false;
    }

    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        out.attempts = attempt;
        const bool degraded = max_attempts > 1 && attempt == max_attempts;
        out.degraded = degraded;
        HardwareConfig acfg = job_cfg;
        if (degraded) {
            acfg.fast_forward = false;
            acfg.watchdog_cycles *= 4;
        }
        try {
            if (deadline && Clock::now() > *deadline)
                throw BudgetExceededError(
                    BudgetExceededError::Kind::WallClock,
                    "wall-clock budget exhausted before attempt " +
                        std::to_string(attempt));

            MulticoreRunner runner(model, acfg);
            // Rung 1 of the ladder: in-run quarantine + migration. The
            // final degraded attempt disables it so a systematically
            // sick composition surfaces its root cause instead of
            // benching every core.
            runner.setFaultTolerant(!degraded);
            runner.setWallDeadline(deadline);
            if (opts.on_quarantine)
                runner.setQuarantineObserver(opts.on_quarantine);

            std::vector<Tensor> outputs;
            const bool snapshot_exists =
                !opts.snapshot_path.empty() &&
                std::filesystem::exists(opts.snapshot_path);
            if (snapshot_exists) {
                try {
                    outputs = runner.resumeBatch(opts.snapshot_path);
                } catch (const CheckpointError &) {
                    // A corrupt frame (the runner already absorbs
                    // damaged per-core sections): discard the snapshot
                    // and restart the attempt clean.
                    removeSnapshot(opts.snapshot_path);
                    throw;
                }
            } else {
                outputs = runner.runBatch(inputs);
            }

            out.status = "done";
            out.degraded_cores = runner.quarantinedCores();
            out.migrations = runner.migrations();
            out.resume_cycle = runner.resumeCycle();
            out.restore_fallbacks = runner.restoreFallbacks();
            out.cores_finished = runner.healthyCores();
            out.makespan_cycles = runner.makespanCycles();
            out.report = runner.reportJson();

            std::vector<std::uint8_t> bytes;
            for (const Tensor &t : outputs)
                bytes.insert(
                    bytes.end(),
                    reinterpret_cast<const std::uint8_t *>(t.data()),
                    reinterpret_cast<const std::uint8_t *>(t.data()) +
                        static_cast<std::size_t>(t.size()) *
                            sizeof(float));
            out.output_crc32 = crc32(bytes.data(), bytes.size());

            if (!opts.snapshot_path.empty())
                removeSnapshot(opts.snapshot_path);
            return out;
        } catch (const BudgetExceededError &e) {
            // Terminal: a cycle-budget blowout reaching the envelope
            // means quarantine could not absorb it (last healthy core
            // or fault tolerance off) and the wall budget is shared by
            // all attempts anyway.
            out.failures.push_back({attempt, e.what()});
            out.status = "timeout";
            out.error = e.what();
            return out;
        } catch (const DeadlockError &e) {
            out.failures.push_back({attempt, e.what()});
            if (attempt == max_attempts) {
                out.error = e.what();
                return out;
            }
        } catch (const CheckpointError &e) {
            out.failures.push_back({attempt, e.what()});
            if (attempt == max_attempts) {
                out.error = e.what();
                return out;
            }
        } catch (const std::exception &e) {
            out.failures.push_back({attempt, e.what()});
            out.error = e.what();
            return out;
        }

        const bool next_degraded =
            max_attempts > 1 && attempt + 1 == max_attempts;
        if (opts.on_retry)
            opts.on_retry(attempt + 1, out.failures.back().cause,
                          next_degraded);
        if (opts.backoff_base.count() > 0) {
            auto delay = opts.backoff_base * (1 << std::min(attempt - 1,
                                                            10));
            delay = std::min<std::chrono::milliseconds>(delay,
                                                        opts.backoff_cap);
            if (deadline && Clock::now() + delay > *deadline) {
                out.status = "timeout";
                out.error = "wall-clock budget exhausted during retry "
                            "backoff";
                return out;
            }
            std::this_thread::sleep_for(delay);
        }
    }
    return out; // unreachable: every path above returns
}

} // namespace stonne::service
