/**
 * @file
 * The simulation-as-a-service daemon (`stonne_cli serve`).
 *
 * A long-running process accepting line-delimited JSON jobs on an
 * input stream and emitting one JSON response object per line on the
 * output stream (see protocol.hpp for the request grammar). The daemon
 * is built to degrade gracefully instead of falling over:
 *
 *  - admission control: a bounded queue in front of the worker pool.
 *    A submission arriving with the queue full is rejected immediately
 *    with a structured `queue_full` reason — backpressure the client
 *    can act on, instead of unbounded memory growth.
 *
 *  - fault isolation: every job runs inside the robustness envelope
 *    (envelope.hpp) on a WorkerPool whose workers survive any
 *    exception. A deadlocking or misconfigured job fails alone; its
 *    neighbors' results are bit-identical to standalone runs.
 *
 *  - status streaming: queued -> admitted -> running -> retrying ->
 *    done | failed | rejected | timeout, each as its own response
 *    line, so a client watches progress without polling.
 *
 *  - graceful shutdown: a `shutdown` request (or SIGINT/SIGTERM in the
 *    CLI wrapper) stops admission, drains the queue and the running
 *    jobs, persists the shared result cache, and exits 0 — never
 *    leaving a half-written snapshot or cache file behind (all
 *    persistence goes through the atomic tmp+rename archive writer).
 */

#ifndef STONNE_SERVICE_DAEMON_HPP
#define STONNE_SERVICE_DAEMON_HPP

#include <chrono>
#include <csignal>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <set>
#include <string>

#include "common/config.hpp"
#include "common/json_writer.hpp"
#include "common/sweep_pool.hpp"
#include "dse/cache.hpp"
#include "service/protocol.hpp"

namespace stonne::service {

/** Daemon construction knobs. */
struct ServiceOptions {
    /**
     * Base configuration: the default job config, and the source of
     * the service policy knobs (service_queue_depth, service_workers,
     * job_budget_cycles, job_budget_wall_ms, job_retries).
     */
    HardwareConfig base;

    /** Result-cache file ("" keeps the shared cache in memory only). */
    std::string cache_file;

    /** Directory for per-job snapshot files. */
    std::string snapshot_dir = ".";

    /** Retry backoff base (0 ms = no sleep; tests use that). */
    std::chrono::milliseconds backoff_base{50};

    /**
     * Spawn workers in the constructor. Pass false + startWorkers()
     * to stage jobs deterministically (admission tests rely on it).
     */
    bool start_workers = true;
};

/** Counter snapshot of a daemon's lifetime. */
struct ServiceCounters {
    std::uint64_t submitted = 0;  //!< run/tune requests seen
    std::uint64_t admitted = 0;   //!< passed admission control
    std::uint64_t rejected = 0;   //!< queue_full/duplicate/shutdown
    std::uint64_t protocol_errors = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t timeout = 0;
    std::uint64_t retries = 0;    //!< extra attempts across all jobs
    std::uint64_t cache_hits = 0;
    std::uint64_t quarantines = 0; //!< cores benched across run_model jobs
};

/** The resilient simulation service. */
class ServiceDaemon
{
  public:
    ServiceDaemon(ServiceOptions opts, std::ostream &out);

    /** Drains and joins (finish()). */
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Spawn the worker pool (no-op when already started). */
    void startWorkers();

    /**
     * Handle one request line (responses go to the output stream).
     * Returns false once a shutdown request has been accepted.
     */
    bool handleLine(const std::string &line);

    /**
     * Serve until EOF, a shutdown request, or *stop_flag becomes
     * non-zero (the CLI's signal handler sets it; the read loop
     * observes it after EINTR). Always drains before returning.
     * @return process exit code (0 on a clean drain)
     */
    int serve(std::istream &in,
              const volatile std::sig_atomic_t *stop_flag = nullptr);

    /** Stop admitting new jobs (running/queued jobs still finish). */
    void requestShutdown();
    bool shutdownRequested() const;

    /**
     * Drain queued + running jobs, persist the shared cache, join the
     * workers. Idempotent; called by serve() and the destructor.
     */
    void finish();

    /** Block until no job is queued or running (workers keep serving). */
    void drain();

    const dse::ResultCache &cache() const { return cache_; }
    ServiceCounters counters() const;
    std::size_t queueDepth() const { return queue_depth_; }
    std::size_t workerCount() const { return pool_.threadCount(); }

  private:
    void emit(const JsonValue &response);
    void emitStatus(const std::string &id, const std::string &state);
    void emitError(const std::string &id, const std::string &code,
                   const std::string &message, bool rejected_job);
    void runJob(const JobRequest &req, const HardwareConfig &cfg,
                std::chrono::steady_clock::time_point admitted_at);
    void runTune(const JobRequest &req, const HardwareConfig &cfg,
                 std::chrono::steady_clock::time_point admitted_at);
    void runExplore(const JobRequest &req, const HardwareConfig &cfg,
                    std::chrono::steady_clock::time_point admitted_at);
    void runModel(const JobRequest &req, const HardwareConfig &cfg,
                  std::chrono::steady_clock::time_point admitted_at);
    void finishJob(const std::string &id);
    std::string snapshotPathFor(const std::string &id) const;

    ServiceOptions opts_;
    std::ostream *out_;
    std::mutex out_mu_;

    std::size_t queue_depth_;
    dse::ResultCache cache_;
    WorkerPool pool_;

    mutable std::mutex mu_; //!< guards everything below
    std::set<std::string> active_ids_;
    std::deque<std::string> recent_ids_;      //!< completion order
    std::set<std::string> recent_id_set_;     //!< same ids, for lookup
    std::size_t queued_ = 0;                  //!< admitted, not started
    ServiceCounters counters_;
    bool shutdown_ = false;
    bool finished_ = false;
};

} // namespace stonne::service

#endif // STONNE_SERVICE_DAEMON_HPP
