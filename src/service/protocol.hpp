/**
 * @file
 * Request protocol of the simulation service (src/service).
 *
 * The daemon speaks line-delimited JSON (NDJSON) over stdin/stdout: one
 * request object per input line, one response object per output line.
 * Request types:
 *
 *   {"type":"run", "id":"j1", ...}    simulate one layer
 *   {"type":"tune", "id":"t1", ...}   auto-tune one layer's mapping
 *   {"type":"explore", "id":"e1", ...} hardware x mapping co-search:
 *                                     cycle-exact Pareto frontier over
 *                                     cycles / energy / area
 *   {"type":"run_model", "id":"m1", "model":"path.model", "batch":4}
 *                                     full-model inference, including
 *                                     multi-core compositions
 *   {"type":"ping"}                   liveness probe -> {"type":"pong"}
 *   {"type":"stats"}                  daemon counters snapshot
 *   {"type":"shutdown"}               graceful drain + exit
 *
 * run and tune target one accelerator instance; a configuration with
 * `cores > 1` rejects them at admission (`bad_config`) — multi-core
 * compositions are driven through run_model, whose result carries the
 * per-core cycle and shared-DRAM stall counters.
 *
 * run/tune/run_model requests select a hardware configuration (first present
 * wins): `config_text` (inline stonne_hw.cfg text), `config` (a file
 * path), `preset` ("tpu"|"maeri"|"sigma"|"snapea", with optional
 * `ms`/`bw`), or the daemon's base configuration. An optional
 * `overrides` object patches individual `key = value` entries on top,
 * textually, re-parsed by the strict config parser — so an unknown or
 * ill-typed override fails the job at admission, never mid-run.
 *
 * Parsing is strict: unknown members, wrong types, out-of-range values,
 * oversized payloads and duplicate ids are rejected with a structured
 * error code instead of undefined behavior. Every parse failure throws
 * ProtocolError carrying one of the codes below.
 */

#ifndef STONNE_SERVICE_PROTOCOL_HPP
#define STONNE_SERVICE_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "controller/layer.hpp"
#include "controller/tile.hpp"

namespace stonne::service {

/** Largest accepted request line, in bytes. */
constexpr std::size_t kMaxRequestBytes = 1u << 20;

/** Largest accepted job id, in bytes. */
constexpr std::size_t kMaxIdBytes = 128;

// Structured error codes carried by error responses.
inline constexpr const char *kErrBadJson = "bad_json";
inline constexpr const char *kErrOversized = "oversized";
inline constexpr const char *kErrUnknownType = "unknown_type";
inline constexpr const char *kErrBadRequest = "bad_request";
inline constexpr const char *kErrBadConfig = "bad_config";
inline constexpr const char *kErrDuplicateId = "duplicate_id";
inline constexpr const char *kErrQueueFull = "queue_full";
inline constexpr const char *kErrShuttingDown = "shutting_down";

/** A rejected request: an error code plus a human-readable reason. */
class ProtocolError : public std::runtime_error
{
  public:
    ProtocolError(std::string code, const std::string &msg)
        : std::runtime_error(msg), code_(std::move(code))
    {
    }

    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

/** Kinds of requests the daemon accepts. */
enum class RequestType { Run, Tune, Explore, RunModel, Ping, Stats, Shutdown };

/** One parsed request line. */
struct JobRequest {
    RequestType type = RequestType::Ping;

    /** Job id (required for run/tune; unique among live/recent jobs). */
    std::string id;

    // --- configuration selection (first non-empty wins) --------------
    std::string config_text;
    std::string config_path;
    std::string preset; //!< tpu | maeri | sigma | snapea
    index_t preset_ms = 256;
    index_t preset_bw = 128;

    /** Textual `key = value` patches applied over the base config. */
    std::vector<std::pair<std::string, std::string>> overrides;

    // --- workload -----------------------------------------------------
    bool has_layer = false;
    LayerSpec layer;
    std::optional<Tile> tile;

    /** Model description file (run_model only). */
    std::string model_path;

    /** Independent samples streamed through the run (run_model only). */
    index_t batch = 1;

    std::uint64_t seed = 42;
    double sparsity = 0.0;
    index_t repeat = 1;
    bool use_cache = true;

    // --- per-job envelope overrides (else the daemon's defaults) ------
    std::optional<index_t> budget_cycles;
    std::optional<index_t> budget_wall_ms;
    std::optional<index_t> retries;
    std::optional<index_t> top_k; //!< tune / explore only

    /** Design-space axes spec (explore only; "" = config's axes). */
    std::string axes;
};

/**
 * Parse one request line. Throws ProtocolError (bad_json / oversized /
 * unknown_type / bad_request) on anything malformed; never partially
 * succeeds.
 */
JobRequest parseRequest(const std::string &line);

/**
 * Apply textual `key = value` overrides to a configuration: matching
 * keys in cfg.toConfigText() are replaced, new keys appended, and the
 * result is re-parsed by the strict config parser (so unknown keys or
 * bad values throw). Throws ProtocolError (bad_config).
 */
HardwareConfig
applyOverrides(const HardwareConfig &cfg,
               const std::vector<std::pair<std::string, std::string>>
                   &overrides);

/**
 * Resolve the configuration a request runs under: inline text, file,
 * preset or the daemon's base, plus overrides, validated. Throws
 * ProtocolError (bad_config) on any failure.
 */
HardwareConfig resolveConfig(const JobRequest &req,
                             const HardwareConfig &base);

} // namespace stonne::service

#endif // STONNE_SERVICE_PROTOCOL_HPP
