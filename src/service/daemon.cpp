#include "service/daemon.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"
#include "common/watchdog.hpp"
#include "dse/tuner.hpp"
#include "explore/explorer.hpp"
#include "engine/output_module.hpp"
#include "frontend/model_loader.hpp"
#include "multicore/multicore_runner.hpp"
#include "service/envelope.hpp"

namespace stonne::service {

namespace {

using Clock = std::chrono::steady_clock;

/** Completed-id memory bound: duplicate detection without unbounded
 *  growth (graceful degradation: very old ids may be reused). */
constexpr std::size_t kRecentIdCapacity = 4096;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

std::size_t
validatedQueueDepth(const HardwareConfig &base)
{
    base.validate();
    return static_cast<std::size_t>(base.service_queue_depth);
}

} // namespace

ServiceDaemon::ServiceDaemon(ServiceOptions opts, std::ostream &out)
    : opts_(std::move(opts)), out_(&out),
      queue_depth_(validatedQueueDepth(opts_.base)),
      cache_(opts_.cache_file),
      pool_(static_cast<std::size_t>(opts_.base.service_workers),
            opts_.start_workers)
{
}

ServiceDaemon::~ServiceDaemon()
{
    finish();
}

void
ServiceDaemon::startWorkers()
{
    pool_.start();
}

void
ServiceDaemon::emit(const JsonValue &response)
{
    std::lock_guard<std::mutex> lock(out_mu_);
    (*out_) << response.dumpLine() << "\n" << std::flush;
}

void
ServiceDaemon::emitStatus(const std::string &id, const std::string &state)
{
    JsonValue r = JsonValue::makeObject();
    r.set("type", "status");
    r.set("id", id);
    r.set("state", state);
    emit(r);
}

void
ServiceDaemon::emitError(const std::string &id, const std::string &code,
                         const std::string &message, bool rejected_job)
{
    JsonValue r = JsonValue::makeObject();
    if (rejected_job) {
        r.set("type", "result");
        r.set("id", id);
        r.set("status", "rejected");
    } else {
        r.set("type", "error");
        if (!id.empty())
            r.set("id", id);
    }
    r.set("code", code);
    r.set("message", message);
    emit(r);
}

std::string
ServiceDaemon::snapshotPathFor(const std::string &id) const
{
    std::string sanitized;
    sanitized.reserve(id.size());
    for (const char c : id)
        sanitized.push_back(
            std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                    c == '_'
                ? c
                : '_');
    // The id hash keeps sanitized collisions ("a/b" vs "a_b") apart.
    std::ostringstream os;
    os << opts_.snapshot_dir << "/service_" << sanitized << "_" << std::hex
       << (dse::ResultCache::hashKey(id) & 0xffffffffu) << ".ckpt";
    return os.str();
}

bool
ServiceDaemon::handleLine(const std::string &line)
{
    if (line.find_first_not_of(" \t\r") == std::string::npos)
        return !shutdownRequested();

    JobRequest req;
    try {
        req = parseRequest(line);
    } catch (const ProtocolError &e) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.protocol_errors;
        }
        emitError("", e.code(), e.what(), /*rejected_job=*/false);
        return !shutdownRequested();
    }

    switch (req.type) {
      case RequestType::Ping: {
        JsonValue r = JsonValue::makeObject();
        r.set("type", "pong");
        emit(r);
        return !shutdownRequested();
      }
      case RequestType::Stats: {
        const ServiceCounters c = counters();
        JsonValue r = JsonValue::makeObject();
        r.set("type", "stats");
        r.set("workers", static_cast<std::uint64_t>(pool_.threadCount()));
        r.set("queue_depth", static_cast<std::uint64_t>(queue_depth_));
        {
            std::lock_guard<std::mutex> lock(mu_);
            r.set("queued", static_cast<std::uint64_t>(queued_));
            r.set("shutting_down", shutdown_);
        }
        r.set("running", static_cast<std::uint64_t>(pool_.running()));
        r.set("submitted", c.submitted);
        r.set("admitted", c.admitted);
        r.set("rejected", c.rejected);
        r.set("protocol_errors", c.protocol_errors);
        r.set("done", c.done);
        r.set("failed", c.failed);
        r.set("timeout", c.timeout);
        r.set("retries", c.retries);
        r.set("cache_hits", c.cache_hits);
        r.set("quarantines", c.quarantines);
        r.set("cache_size", static_cast<std::uint64_t>(cache_.size()));
        emit(r);
        return !shutdownRequested();
      }
      case RequestType::Shutdown: {
        requestShutdown();
        JsonValue r = JsonValue::makeObject();
        r.set("type", "shutting_down");
        emit(r);
        return false;
      }
      case RequestType::Run:
      case RequestType::Tune:
      case RequestType::Explore:
      case RequestType::RunModel:
        break;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.submitted;
    }
    emitStatus(req.id, "queued");

    // The configuration is resolved on the input thread so a broken
    // config rejects synchronously, before it can occupy a worker.
    HardwareConfig cfg;
    try {
        cfg = resolveConfig(req, opts_.base);
    } catch (const ProtocolError &e) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.rejected;
        }
        emitError(req.id, e.code(), e.what(), /*rejected_job=*/true);
        return !shutdownRequested();
    }
    // Single-layer run/tune jobs drive one accelerator instance; a
    // multi-core composition must go through run_model, which owns the
    // cross-core scheduling and the shared-DRAM arbitration.
    if (req.type != RequestType::RunModel && cfg.cores > 1) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.rejected;
        }
        emitError(req.id, kErrBadConfig,
                  "config key 'cores' = " + std::to_string(cfg.cores) +
                      " selects a multi-core composition, but a " +
                      std::string(req.type == RequestType::Tune ? "tune"
                                  : req.type == RequestType::Explore
                                      ? "explore"
                                      : "run") +
                      " job targets one accelerator; submit run_model "
                      "(which owns the cross-core scheduling) or set "
                      "cores = 1",
                  /*rejected_job=*/true);
        return !shutdownRequested();
    }
    // Per-request envelope overrides land in the job's config, where
    // the engine (cycle budget) and the envelope (wall/retries) read
    // them.
    if (req.budget_cycles)
        cfg.job_budget_cycles = *req.budget_cycles;
    if (req.budget_wall_ms)
        cfg.job_budget_wall_ms = *req.budget_wall_ms;
    if (req.retries)
        cfg.job_retries = *req.retries;

    // Admission control: the draining flag, duplicate ids, the bounded
    // queue AND the hand-off to the worker pool, all under one lock.
    // The pool hand-off must not slip outside: finish() sets shutdown_
    // under mu_ before it stops the pool, so committing the submission
    // while still holding mu_ guarantees that every job admitted here
    // reaches the pool before pool_.shutdown() can run — a concurrent
    // shutdown is seen as `shutting_down` here, never as a lost job or
    // a spurious `queue_full`.
    const Clock::time_point admitted_at = Clock::now();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (shutdown_) {
            ++counters_.rejected;
            emitError(req.id, kErrShuttingDown,
                      "the service is shutting down", true);
            return false;
        }
        if (active_ids_.count(req.id) || recent_id_set_.count(req.id)) {
            ++counters_.rejected;
            emitError(req.id, kErrDuplicateId,
                      "a job with id '" + req.id +
                          "' is already live or recently completed",
                      true);
            return true;
        }
        if (queued_ >= queue_depth_) {
            ++counters_.rejected;
            std::ostringstream msg;
            msg << "admission queue is full (" << queued_ << "/"
                << queue_depth_
                << " jobs waiting); resubmit after a result drains";
            emitError(req.id, kErrQueueFull, msg.str(), true);
            return true;
        }
        active_ids_.insert(req.id);
        ++queued_;
        ++counters_.admitted;

        emitStatus(req.id, "admitted");
        const JobRequest job = req;
        if (req.type == RequestType::Run)
            pool_.submit([this, job, cfg, admitted_at] {
                runJob(job, cfg, admitted_at);
            });
        else if (req.type == RequestType::Tune)
            pool_.submit([this, job, cfg, admitted_at] {
                runTune(job, cfg, admitted_at);
            });
        else if (req.type == RequestType::Explore)
            pool_.submit([this, job, cfg, admitted_at] {
                runExplore(job, cfg, admitted_at);
            });
        else
            pool_.submit([this, job, cfg, admitted_at] {
                runModel(job, cfg, admitted_at);
            });
    }
    return !shutdownRequested();
}

void
ServiceDaemon::runJob(const JobRequest &req, const HardwareConfig &cfg,
                      Clock::time_point admitted_at)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
    }
    const double queue_wait_ms = msSince(admitted_at);
    emitStatus(req.id, "running");

    EnvelopeOptions eo;
    eo.max_attempts = static_cast<int>(cfg.job_retries) + 1;
    eo.backoff_base = opts_.backoff_base;
    eo.budget_wall_ms = cfg.job_budget_wall_ms;
    if (req.repeat > 1)
        eo.snapshot_path = snapshotPathFor(req.id);
    eo.cache = &cache_;
    eo.use_cache = req.use_cache;
    eo.on_retry = [this, &req](int next_attempt, const std::string &cause,
                               bool degraded) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.retries;
        }
        JsonValue r = JsonValue::makeObject();
        r.set("type", "status");
        r.set("id", req.id);
        r.set("state", "retrying");
        r.set("attempt", static_cast<std::int64_t>(next_attempt));
        r.set("degraded", degraded);
        r.set("cause", cause);
        emit(r);
    };

    const JobOutcome out = runJobEnvelope(cfg, req.layer, req.tile,
                                          req.seed, req.sparsity,
                                          req.repeat, eo);

    JsonValue r = JsonValue::makeObject();
    r.set("type", "result");
    r.set("id", req.id);
    r.set("status", out.status);
    if (out.status == "done") {
        if (out.cache_hit) {
            JsonValue s = JsonValue::makeObject();
            s.set("cycles", static_cast<std::uint64_t>(out.cached->cycles));
            s.set("energy_uj", out.cached->energy_uj);
            s.set("area_um2", out.cached->area_um2);
            s.set("ms_utilization", out.cached->ms_utilization);
            r["summary"] = std::move(s);
        } else {
            r["summary"] = OutputModule::summary(cfg, out.result);
        }
    } else {
        r.set("error", out.error);
    }

    JsonValue svc = JsonValue::makeObject();
    svc.set("attempts", static_cast<std::int64_t>(out.attempts));
    svc.set("degraded", out.degraded);
    svc.set("cache_hit", out.cache_hit);
    svc.set("ops", static_cast<std::uint64_t>(req.repeat));
    svc.set("ops_resumed", static_cast<std::uint64_t>(out.ops_resumed));
    svc.set("queue_wait_ms", queue_wait_ms);
    svc.set("wall_ms", msSince(admitted_at) - queue_wait_ms);
    svc.set("output_crc32", static_cast<std::uint64_t>(out.output_crc32));
    JsonValue failures = JsonValue::makeArray();
    for (const AttemptFailure &f : out.failures) {
        JsonValue fj = JsonValue::makeObject();
        fj.set("attempt", static_cast<std::int64_t>(f.attempt));
        fj.set("cause", f.cause);
        failures.append(std::move(fj));
    }
    r["service"] = std::move(svc);
    r["service"]["failures"] = std::move(failures);

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (out.status == "done")
            ++counters_.done;
        else if (out.status == "timeout")
            ++counters_.timeout;
        else
            ++counters_.failed;
        if (out.cache_hit)
            ++counters_.cache_hits;
    }
    finishJob(req.id);
    emit(r);
}

void
ServiceDaemon::runTune(const JobRequest &req, const HardwareConfig &cfg,
                       Clock::time_point admitted_at)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
    }
    const double queue_wait_ms = msSince(admitted_at);
    emitStatus(req.id, "running");

    JsonValue r = JsonValue::makeObject();
    r.set("type", "result");
    r.set("id", req.id);
    std::uint64_t hit_count = 0;
    bool ok = false;
    try {
        dse::TuneOptions topts;
        topts.top_k = req.top_k ? *req.top_k : cfg.dse_top_k;
        // The daemon's workers are the parallelism; a nested candidate
        // pool per tune job would oversubscribe the host.
        topts.threads = 1;
        topts.sparsity = req.sparsity;
        topts.seed = req.seed;
        dse::AutoTuner tuner(cfg, topts, cache_);
        const dse::TuneReport rep = tuner.tuneLayer(req.layer);
        hit_count = rep.cache_hits;
        ok = true;

        r.set("status", "done");
        JsonValue s = JsonValue::makeObject();
        s.set("chosen_tile", rep.best.canonical());
        s.set("chosen_cycles", static_cast<std::uint64_t>(rep.best_cycles));
        s.set("greedy_tile", rep.greedy_tile.canonical());
        s.set("greedy_cycles",
              static_cast<std::uint64_t>(rep.greedy_cycles));
        s.set("space_size", rep.space_size);
        s.set("evaluated", static_cast<std::uint64_t>(rep.ranked.size()));
        s.set("cache_hits", rep.cache_hits);
        s.set("simulations_run", rep.simulations_run);
        s.set("rank_correlation", rep.rank_correlation);
        r["summary"] = std::move(s);
    } catch (const std::exception &e) {
        r.set("status", "failed");
        r.set("error", e.what());
    }

    JsonValue svc = JsonValue::makeObject();
    svc.set("attempts", static_cast<std::int64_t>(1));
    svc.set("degraded", false);
    svc.set("cache_hit", hit_count > 0);
    svc.set("queue_wait_ms", queue_wait_ms);
    svc.set("wall_ms", msSince(admitted_at) - queue_wait_ms);
    r["service"] = std::move(svc);

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (ok)
            ++counters_.done;
        else
            ++counters_.failed;
        counters_.cache_hits += hit_count;
    }
    finishJob(req.id);
    emit(r);
}

void
ServiceDaemon::runExplore(const JobRequest &req, const HardwareConfig &cfg,
                          Clock::time_point admitted_at)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
    }
    const double queue_wait_ms = msSince(admitted_at);
    emitStatus(req.id, "running");

    JsonValue r = JsonValue::makeObject();
    r.set("type", "result");
    r.set("id", req.id);
    std::uint64_t hit_count = 0;
    int attempts = 0;
    bool ok = false;
    bool degraded = false;
    bool timed_out = false;
    const int max_attempts = static_cast<int>(cfg.job_retries) + 1;
    while (attempts < max_attempts && !ok && !timed_out) {
        ++attempts;
        HardwareConfig attempt_cfg = cfg;
        if (attempts == max_attempts && max_attempts > 1) {
            // Last rung of the ladder: trade speed for robustness, as
            // the run envelope does (exact engine path, patient
            // watchdog).
            attempt_cfg.fast_forward = false;
            attempt_cfg.watchdog_cycles = cfg.watchdog_cycles * 4;
            degraded = true;
        }
        try {
            explore::ExploreOptions eopts;
            eopts.top_k = req.top_k ? *req.top_k : cfg.explore_top_k;
            eopts.axes = req.axes.empty() ? cfg.explore_axes : req.axes;
            // The daemon's workers are the parallelism; a nested
            // candidate pool per explore job would oversubscribe the
            // host.
            eopts.threads = 1;
            eopts.sparsity = req.sparsity;
            eopts.seed = req.seed;
            explore::Explorer explorer(attempt_cfg, eopts, cache_);
            const explore::ExploreReport rep =
                explorer.exploreLayer(req.layer);
            hit_count = rep.cache_hits;
            ok = true;
            r.set("status", "done");
            r["summary"] = rep.json();
        } catch (const BudgetExceededError &e) {
            timed_out = true;
            r.set("status", "timeout");
            r.set("error", e.what());
        } catch (const std::exception &e) {
            const bool retryable =
                dynamic_cast<const DeadlockError *>(&e) != nullptr ||
                dynamic_cast<const CheckpointError *>(&e) != nullptr;
            if (retryable && attempts < max_attempts) {
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++counters_.retries;
                }
                JsonValue s = JsonValue::makeObject();
                s.set("type", "status");
                s.set("id", req.id);
                s.set("state", "retrying");
                s.set("attempt",
                      static_cast<std::int64_t>(attempts + 1));
                s.set("degraded", attempts + 1 == max_attempts);
                s.set("cause", std::string(e.what()));
                emit(s);
                if (opts_.backoff_base.count() > 0)
                    std::this_thread::sleep_for(opts_.backoff_base *
                                                attempts);
                continue;
            }
            r.set("status", "failed");
            r.set("error", e.what());
            break;
        }
    }

    JsonValue svc = JsonValue::makeObject();
    svc.set("attempts", static_cast<std::int64_t>(attempts));
    svc.set("degraded", degraded);
    svc.set("cache_hit", hit_count > 0);
    svc.set("queue_wait_ms", queue_wait_ms);
    svc.set("wall_ms", msSince(admitted_at) - queue_wait_ms);
    r["service"] = std::move(svc);

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (ok)
            ++counters_.done;
        else if (timed_out)
            ++counters_.timeout;
        else
            ++counters_.failed;
        counters_.cache_hits += hit_count;
    }
    finishJob(req.id);
    emit(r);
}

void
ServiceDaemon::runModel(const JobRequest &req, const HardwareConfig &cfg,
                        Clock::time_point admitted_at)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
    }
    const double queue_wait_ms = msSince(admitted_at);
    emitStatus(req.id, "running");

    JsonValue r = JsonValue::makeObject();
    r.set("type", "result");
    r.set("id", req.id);

    DnnModel model;
    std::vector<Tensor> inputs;
    bool loaded = false;
    try {
        model = loadModelFromFile(req.model_path, req.seed);
        fatalIf(model.layers.empty(), "model '" + req.model_path +
                                          "' has no layers");

        // One deterministic input per sample: the batch streams the
        // same network over `batch` independently drawn activations.
        const DnnLayer &first = model.layers.front();
        Rng rng(req.seed);
        for (index_t b = 0; b < req.batch; ++b) {
            Tensor in;
            if (first.op == OpType::Conv2d ||
                first.op == OpType::MaxPool2d) {
                const Conv2dShape &c = first.spec.conv;
                in = Tensor({c.N, c.C, c.X, c.Y});
            } else {
                const GemmDims g = first.spec.gemm;
                in = Tensor({g.n, g.k});
            }
            in.fillUniform(rng, 0.0f, 1.0f);
            inputs.push_back(std::move(in));
        }
        loaded = true;
    } catch (const std::exception &e) {
        r.set("status", "failed");
        r.set("error", e.what());
    }

    ModelJobOutcome out;
    if (loaded) {
        ModelEnvelopeOptions eo;
        eo.max_attempts = static_cast<int>(cfg.job_retries) + 1;
        eo.backoff_base = opts_.backoff_base;
        eo.budget_wall_ms = cfg.job_budget_wall_ms;
        eo.snapshot_path = snapshotPathFor(req.id);
        eo.on_retry = [this, &req](int next_attempt,
                                   const std::string &cause,
                                   bool degraded) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.retries;
            }
            JsonValue s = JsonValue::makeObject();
            s.set("type", "status");
            s.set("id", req.id);
            s.set("state", "retrying");
            s.set("attempt", static_cast<std::int64_t>(next_attempt));
            s.set("degraded", degraded);
            s.set("cause", cause);
            emit(s);
        };
        // Quarantine-then-migrate is the first rung of the ladder; the
        // status stream surfaces each transition as it happens so a
        // client watching the job sees the degradation live.
        eo.on_quarantine = [this, &req](index_t core,
                                        const std::string &cause,
                                        count_t migrations,
                                        cycle_t resume_cycle) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.quarantines;
            }
            JsonValue s = JsonValue::makeObject();
            s.set("type", "status");
            s.set("id", req.id);
            s.set("state", "quarantined");
            s.set("core", static_cast<std::int64_t>(core));
            s.set("cause", cause);
            s.set("migrations", static_cast<std::uint64_t>(migrations));
            s.set("resume_cycle",
                  static_cast<std::uint64_t>(resume_cycle));
            emit(s);
        };

        out = runModelJobEnvelope(model, cfg, inputs, eo);
        r.set("status", out.status);
        if (out.status == "done")
            r["summary"] = std::move(out.report);
        else
            r.set("error", out.error);
    }

    JsonValue svc = JsonValue::makeObject();
    svc.set("attempts",
            static_cast<std::int64_t>(loaded ? out.attempts : 1));
    svc.set("degraded", out.degraded);
    svc.set("cache_hit", false);
    svc.set("batch", static_cast<std::int64_t>(req.batch));
    JsonValue degraded_cores = JsonValue::makeArray();
    for (const index_t c : out.degraded_cores)
        degraded_cores.append(
            JsonValue::makeInt(static_cast<std::int64_t>(c)));
    svc["degraded_cores"] = std::move(degraded_cores);
    svc.set("migrations", static_cast<std::uint64_t>(out.migrations));
    svc.set("resume_cycle", static_cast<std::uint64_t>(out.resume_cycle));
    svc.set("restore_fallbacks",
            static_cast<std::uint64_t>(out.restore_fallbacks));
    JsonValue finished = JsonValue::makeArray();
    for (const index_t c : out.cores_finished)
        finished.append(JsonValue::makeInt(static_cast<std::int64_t>(c)));
    svc["cores_finished"] = std::move(finished);
    svc.set("output_crc32", static_cast<std::uint64_t>(out.output_crc32));
    svc.set("queue_wait_ms", queue_wait_ms);
    svc.set("wall_ms", msSince(admitted_at) - queue_wait_ms);
    JsonValue failures = JsonValue::makeArray();
    for (const AttemptFailure &f : out.failures) {
        JsonValue fj = JsonValue::makeObject();
        fj.set("attempt", static_cast<std::int64_t>(f.attempt));
        fj.set("cause", f.cause);
        failures.append(std::move(fj));
    }
    svc["failures"] = std::move(failures);
    r["service"] = std::move(svc);

    const bool ok = loaded && out.status == "done";
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (ok)
            ++counters_.done;
        else if (loaded && out.status == "timeout")
            ++counters_.timeout;
        else
            ++counters_.failed;
    }
    finishJob(req.id);
    emit(r);
}

void
ServiceDaemon::finishJob(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mu_);
    active_ids_.erase(id);
    recent_ids_.push_back(id);
    recent_id_set_.insert(id);
    while (recent_ids_.size() > kRecentIdCapacity) {
        recent_id_set_.erase(recent_ids_.front());
        recent_ids_.pop_front();
    }
}

void
ServiceDaemon::requestShutdown()
{
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
}

bool
ServiceDaemon::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
}

void
ServiceDaemon::drain()
{
    pool_.drain();
}

void
ServiceDaemon::finish()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
        if (finished_)
            return;
        finished_ = true;
    }
    // Paused pools (start_workers=false) must still drain their queue.
    pool_.start();
    pool_.drain();
    cache_.save();
    pool_.shutdown();
}

int
ServiceDaemon::serve(std::istream &in,
                     const volatile std::sig_atomic_t *stop_flag)
{
    std::string line;
    while (true) {
        if (stop_flag && *stop_flag)
            break;
        if (!std::getline(in, line))
            break; // EOF, stream error, or EINTR from a signal
        if (!handleLine(line))
            break;
    }
    requestShutdown();
    finish();

    JsonValue bye = JsonValue::makeObject();
    bye.set("type", "bye");
    const ServiceCounters c = counters();
    bye.set("done", c.done);
    bye.set("failed", c.failed);
    bye.set("timeout", c.timeout);
    bye.set("rejected", c.rejected);
    emit(bye);
    return 0;
}

ServiceCounters
ServiceDaemon::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace stonne::service
