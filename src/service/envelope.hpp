/**
 * @file
 * Per-job robustness envelope of the simulation service.
 *
 * Every admitted run job executes inside this envelope:
 *
 *  - budgets: the configuration's `job_budget_cycles` arms the
 *    progress watchdog's simulated-cycle ceiling; the envelope's wall
 *    budget arms a host-clock deadline shared by all attempts of the
 *    job. Crossing either throws BudgetExceededError and reports the
 *    job as `timeout` — terminal, never retried (the run was making
 *    progress; a different policy cannot help).
 *
 *  - retry with backoff: DeadlockError and CheckpointError are the
 *    retryable failures. Between attempts the envelope sleeps
 *    base * 2^(attempt-1) capped at 2 s, and the *final* attempt runs
 *    degraded exactly like the recovering sweep runner: fast-forward
 *    OFF (the exact engine sidesteps bulk-path bugs) and the watchdog
 *    window widened x4 (outwaits transient stalls).
 *
 *  - resume-instead-of-restart: a multi-operation job (`repeat` > 1)
 *    snapshots engine state + merged results at operation boundaries;
 *    a retry resumes from the snapshot instead of re-simulating the
 *    completed operations. A corrupt snapshot is deleted and the
 *    attempt restarts clean — damage never fails the job by itself.
 *
 *  - warm answers: cacheable jobs (dense controller, single op, no
 *    faults) are first served from the shared design-space ResultCache
 *    and record their outcome into it, so a re-submitted point costs a
 *    hash lookup instead of a simulation. Keys are tuner-compatible:
 *    a tune job's evaluations warm run jobs and vice versa.
 *
 * Any other exception (configuration conflicts, protocol-level
 * mistakes that slipped admission) is terminal: retrying cannot fix a
 * deterministic error.
 */

#ifndef STONNE_SERVICE_ENVELOPE_HPP
#define STONNE_SERVICE_ENVELOPE_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json_writer.hpp"
#include "controller/layer.hpp"
#include "controller/tile.hpp"
#include "dse/cache.hpp"
#include "engine/stonne_api.hpp"
#include "multicore/multicore_runner.hpp"

namespace stonne::service {

/** One failed attempt inside the envelope. */
struct AttemptFailure {
    int attempt = 0;
    std::string cause;
};

/** Envelope policy for one job. */
struct EnvelopeOptions {
    /** Total attempts (first try + retries); >= 1. */
    int max_attempts = 3;

    /** Backoff base; attempt n sleeps base * 2^(n-1). 0 = no sleep. */
    std::chrono::milliseconds backoff_base{50};

    /** Backoff ceiling. */
    std::chrono::milliseconds backoff_cap{2000};

    /** Whole-job wall-clock budget in ms (0 = unbounded). */
    index_t budget_wall_ms = 0;

    /** Snapshot file for multi-op jobs ("" disables snapshots). */
    std::string snapshot_path;

    /** Shared result cache (nullptr = no caching). */
    dse::ResultCache *cache = nullptr;
    bool use_cache = true;

    /** Called before each retry: (next_attempt, cause, degraded). */
    std::function<void(int, const std::string &, bool)> on_retry;
};

/** What happened to one job. */
struct JobOutcome {
    /** done | failed | timeout */
    std::string status = "failed";

    int attempts = 0;
    bool degraded = false;   //!< the final attempt ran degraded
    bool cache_hit = false;  //!< served from the shared result cache
    index_t ops_resumed = 0; //!< operations skipped via the snapshot
    std::vector<AttemptFailure> failures;

    /** Terminal error text (failed / timeout). */
    std::string error;

    /** Full result when status == "done" and !cache_hit. */
    SimulationResult result;

    /** Reduced result for cache hits. */
    std::optional<dse::CachedOutcome> cached;

    /** CRC-32 of the final operation's output tensor (0 on hits). */
    std::uint32_t output_crc32 = 0;
};

/**
 * Run one `run` job under the envelope. `cfg` carries the per-op cycle
 * budget (`job_budget_cycles`) and the watchdog window; trace/
 * checkpoint/autotune side effects are silenced for service jobs.
 * Never throws: every failure mode lands in the returned outcome.
 */
JobOutcome runJobEnvelope(const HardwareConfig &cfg, const LayerSpec &layer,
                          const std::optional<Tile> &tile,
                          std::uint64_t seed, double sparsity,
                          index_t repeat, const EnvelopeOptions &opts);

/** Envelope policy for one `run_model` job (multi-core composition). */
struct ModelEnvelopeOptions {
    /** Total attempts (first try + retries); >= 1. */
    int max_attempts = 3;

    /** Backoff base; attempt n sleeps base * 2^(n-1). 0 = no sleep. */
    std::chrono::milliseconds backoff_base{50};

    /** Backoff ceiling. */
    std::chrono::milliseconds backoff_cap{2000};

    /** Whole-job wall-clock budget in ms (0 = unbounded). */
    index_t budget_wall_ms = 0;

    /** Snapshot file for resume-instead-of-restart ("" disables). */
    std::string snapshot_path;

    /** Called before each retry: (next_attempt, cause, degraded). */
    std::function<void(int, const std::string &, bool)> on_retry;

    /** Called on each in-run quarantine event: (sick core, cause,
     *  cumulative migrations, global resume cycle). */
    std::function<void(index_t, const std::string &, count_t, cycle_t)>
        on_quarantine;
};

/** What happened to one `run_model` job. */
struct ModelJobOutcome {
    /** done | failed | timeout */
    std::string status = "failed";

    int attempts = 0;
    bool degraded = false; //!< the final attempt ran degraded

    /** Cores quarantined during the completing attempt. */
    std::vector<index_t> degraded_cores;
    /** Work-migration events of the completing attempt. */
    count_t migrations = 0;
    /** Global cycle the last migration resumed at (0 = none). */
    cycle_t resume_cycle = 0;
    /** Corrupt per-core snapshot sections replaced by clean cores. */
    index_t restore_fallbacks = 0;
    /** Cores that actually finished the job (the healthy set). */
    std::vector<index_t> cores_finished;

    std::vector<AttemptFailure> failures;

    /** Terminal error text (failed / timeout). */
    std::string error;

    /** The runner's full JSON report when status == "done". */
    JsonValue report;

    cycle_t makespan_cycles = 0;

    /** CRC-32 over the concatenated batch output tensors. */
    std::uint32_t output_crc32 = 0;
};

/**
 * Run one `run_model` job — a whole-network inference on a (possibly
 * multi-core) composition — under the service retry ladder:
 *
 *  1. in-run core quarantine + work migration (fault-tolerant runner):
 *     a per-core terminal fault benches the core and the survivors
 *     finish the job at degraded throughput — no restart at all;
 *  2. retry with backoff, resuming from the job snapshot when one
 *     exists (a corrupt snapshot is deleted and the attempt restarts
 *     clean);
 *  3. final degraded restart: fast-forward OFF, watchdog window x4,
 *     fault tolerance OFF so a systematically sick composition still
 *     surfaces its root cause instead of quarantining every core.
 *
 * Never throws: every failure mode lands in the returned outcome.
 */
ModelJobOutcome runModelJobEnvelope(const DnnModel &model,
                                    const HardwareConfig &cfg,
                                    const std::vector<Tensor> &inputs,
                                    const ModelEnvelopeOptions &opts);

} // namespace stonne::service

#endif // STONNE_SERVICE_ENVELOPE_HPP
