#include "service/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

#include "common/json_writer.hpp"
#include "common/logging.hpp"

namespace stonne::service {

namespace {

[[noreturn]] void
badRequest(const std::string &msg)
{
    throw ProtocolError(kErrBadRequest, msg);
}

/** Checked read of an integral member into index_t. */
index_t
asIndex(const JsonValue &v, const std::string &name, index_t min_value)
{
    if (!v.isNumber() || v.kind() == JsonValue::Kind::Double)
        badRequest("'" + name + "' must be an integer");
    const std::int64_t raw = v.asInt64();
    if (raw < static_cast<std::int64_t>(min_value))
        badRequest("'" + name + "' must be >= " +
                   std::to_string(min_value) + ", got " +
                   std::to_string(raw));
    return static_cast<index_t>(raw);
}

const JsonValue &
requireMember(const JsonValue &obj, const std::string &name)
{
    const JsonValue *m = obj.find(name);
    if (!m)
        badRequest("missing required member '" + name + "'");
    return *m;
}

/** Reject members outside the allowed set (strict protocol). */
void
rejectUnknownMembers(const JsonValue &obj, const std::set<std::string> &ok,
                     const std::string &where)
{
    for (const auto &[key, value] : obj.members()) {
        (void)value;
        if (ok.find(key) == ok.end())
            badRequest("unknown member '" + key + "' in " + where);
    }
}

LayerSpec
parseLayer(const JsonValue &v)
{
    if (!v.isObject())
        badRequest("'layer' must be an object");
    const std::string kind = requireMember(v, "kind").asString();

    std::string name = "job_layer";
    if (const JsonValue *n = v.find("name"))
        name = n->asString();

    if (kind == "conv") {
        rejectUnknownMembers(v,
                             {"kind", "name", "R", "S", "C", "K", "G", "N",
                              "X", "Y", "stride", "pad"},
                             "layer");
        Conv2dShape c;
        c.R = asIndex(requireMember(v, "R"), "R", 1);
        c.S = asIndex(requireMember(v, "S"), "S", 1);
        c.C = asIndex(requireMember(v, "C"), "C", 1);
        c.K = asIndex(requireMember(v, "K"), "K", 1);
        c.X = asIndex(requireMember(v, "X"), "X", 1);
        c.Y = asIndex(requireMember(v, "Y"), "Y", 1);
        if (const JsonValue *g = v.find("G"))
            c.G = asIndex(*g, "G", 1);
        if (const JsonValue *n = v.find("N"))
            c.N = asIndex(*n, "N", 1);
        if (const JsonValue *s = v.find("stride"))
            c.stride = asIndex(*s, "stride", 1);
        if (const JsonValue *p = v.find("pad"))
            c.padding = asIndex(*p, "pad", 0);
        return LayerSpec::convolution(std::move(name), c);
    }
    if (kind == "gemm" || kind == "linear" || kind == "spmm") {
        rejectUnknownMembers(v, {"kind", "name", "M", "N", "K"}, "layer");
        const index_t m = asIndex(requireMember(v, "M"), "M", 1);
        const index_t n = asIndex(requireMember(v, "N"), "N", 1);
        const index_t k = asIndex(requireMember(v, "K"), "K", 1);
        if (kind == "gemm")
            return LayerSpec::gemmLayer(std::move(name), m, n, k);
        if (kind == "spmm")
            return LayerSpec::sparseGemm(std::move(name), m, n, k);
        // linear: N = batch, K = inputs, M = outputs (GEMM view).
        return LayerSpec::linear(std::move(name), n, k, m);
    }
    badRequest("unknown layer kind '" + kind +
               "' (expected conv|gemm|linear|spmm)");
}

Tile
parseTile(const JsonValue &v)
{
    if (!v.isArray() || v.items().size() != 8)
        badRequest("'tile' must be an array of 8 positive integers "
                   "[T_R,T_S,T_C,T_G,T_K,T_N,T_X,T_Y]");
    Tile t;
    index_t *dims[8] = {&t.t_r, &t.t_s, &t.t_c, &t.t_g,
                        &t.t_k, &t.t_n, &t.t_x, &t.t_y};
    for (std::size_t i = 0; i < 8; ++i)
        *dims[i] = asIndex(v.items()[i], "tile[" + std::to_string(i) + "]",
                           1);
    return t;
}

/** Render one override value as config-file text. */
std::string
overrideValueText(const JsonValue &v, const std::string &key)
{
    switch (v.kind()) {
      case JsonValue::Kind::String:
        return v.asString();
      case JsonValue::Kind::Bool:
        return v.asBool() ? "ON" : "OFF";
      case JsonValue::Kind::Int:
        return std::to_string(v.asInt64());
      case JsonValue::Kind::Uint:
        return std::to_string(v.asUint64());
      case JsonValue::Kind::Double: {
        std::ostringstream os;
        os << v.asDouble();
        return os.str();
      }
      default:
        badRequest("override '" + key +
                   "' must be a string, number or boolean");
    }
}

std::string
lowercase(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** `key` of a "key = value" config line (lowercased), "" otherwise. */
std::string
configLineKey(const std::string &line)
{
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
        return "";
    std::string key = line.substr(0, eq);
    const std::size_t b = key.find_first_not_of(" \t");
    const std::size_t e = key.find_last_not_of(" \t");
    if (b == std::string::npos)
        return "";
    return lowercase(key.substr(b, e - b + 1));
}

} // namespace

JobRequest
parseRequest(const std::string &line)
{
    if (line.size() > kMaxRequestBytes)
        throw ProtocolError(
            kErrOversized,
            "request is " + std::to_string(line.size()) +
                " bytes; the limit is " + std::to_string(kMaxRequestBytes));

    JsonValue root;
    try {
        root = JsonValue::parse(line);
    } catch (const JsonParseError &e) {
        throw ProtocolError(kErrBadJson, e.what());
    }
    if (!root.isObject())
        throw ProtocolError(kErrBadJson,
                            "a request must be a JSON object");

    const JsonValue *type = root.find("type");
    if (!type || !type->isString())
        badRequest("missing required string member 'type'");

    JobRequest req;
    const std::string &t = type->asString();
    if (t == "ping")
        req.type = RequestType::Ping;
    else if (t == "stats")
        req.type = RequestType::Stats;
    else if (t == "shutdown")
        req.type = RequestType::Shutdown;
    else if (t == "run")
        req.type = RequestType::Run;
    else if (t == "tune")
        req.type = RequestType::Tune;
    else if (t == "explore")
        req.type = RequestType::Explore;
    else if (t == "run_model")
        req.type = RequestType::RunModel;
    else
        throw ProtocolError(kErrUnknownType,
                            "unknown request type '" + t + "'");

    if (req.type == RequestType::Ping || req.type == RequestType::Stats ||
        req.type == RequestType::Shutdown) {
        rejectUnknownMembers(root, {"type"}, "a " + t + " request");
        return req;
    }

    if (req.type == RequestType::RunModel)
        rejectUnknownMembers(root,
                             {"type", "id", "config", "config_text",
                              "preset", "ms", "bw", "overrides", "model",
                              "batch", "seed", "budget_cycles",
                              "budget_wall_ms", "retries"},
                             "a run_model request");
    else
        rejectUnknownMembers(
            root,
            {"type", "id", "config", "config_text", "preset", "ms", "bw",
             "overrides", "layer", "tile", "seed", "sparsity", "repeat",
             "use_cache", "budget_cycles", "budget_wall_ms", "retries",
             "top_k", "axes"},
            "a " + t + " request");

    const JsonValue &id = requireMember(root, "id");
    if (!id.isString() || id.asString().empty())
        badRequest("'id' must be a non-empty string");
    if (id.asString().size() > kMaxIdBytes)
        badRequest("'id' exceeds " + std::to_string(kMaxIdBytes) +
                   " bytes");
    req.id = id.asString();

    if (const JsonValue *v = root.find("config"))
        req.config_path = v->asString();
    if (const JsonValue *v = root.find("config_text"))
        req.config_text = v->asString();
    if (const JsonValue *v = root.find("preset")) {
        req.preset = v->asString();
        if (req.preset != "tpu" && req.preset != "maeri" &&
            req.preset != "sigma" && req.preset != "snapea")
            badRequest("unknown preset '" + req.preset +
                       "' (expected tpu|maeri|sigma|snapea)");
    }
    if (const JsonValue *v = root.find("ms"))
        req.preset_ms = asIndex(*v, "ms", 1);
    if (const JsonValue *v = root.find("bw"))
        req.preset_bw = asIndex(*v, "bw", 1);

    if (const JsonValue *v = root.find("overrides")) {
        if (!v->isObject())
            badRequest("'overrides' must be an object");
        for (const auto &[key, value] : v->members())
            req.overrides.emplace_back(lowercase(key),
                                       overrideValueText(value, key));
    }

    if (req.type == RequestType::RunModel) {
        const JsonValue &m = requireMember(root, "model");
        if (!m.isString() || m.asString().empty())
            badRequest("'model' must be a non-empty file path");
        req.model_path = m.asString();
        if (const JsonValue *v = root.find("batch"))
            req.batch = asIndex(*v, "batch", 1);
        if (const JsonValue *v = root.find("seed")) {
            if (!v->isNumber() || v->kind() == JsonValue::Kind::Double)
                badRequest("'seed' must be an integer");
            req.seed = v->asUint64();
        }
        // The envelope knobs apply to run_model jobs too: the retry
        // ladder and the wall budget wrap the whole composition.
        if (const JsonValue *v = root.find("budget_cycles"))
            req.budget_cycles = asIndex(*v, "budget_cycles", 0);
        if (const JsonValue *v = root.find("budget_wall_ms"))
            req.budget_wall_ms = asIndex(*v, "budget_wall_ms", 0);
        if (const JsonValue *v = root.find("retries"))
            req.retries = asIndex(*v, "retries", 0);
        return req;
    }

    req.has_layer = root.find("layer") != nullptr;
    if (!req.has_layer)
        badRequest("a " + t + " request needs a 'layer' object");
    req.layer = parseLayer(*root.find("layer"));
    try {
        req.layer.validate();
    } catch (const std::exception &e) {
        badRequest(e.what());
    }

    if (const JsonValue *v = root.find("tile"))
        req.tile = parseTile(*v);

    if (const JsonValue *v = root.find("seed")) {
        if (!v->isNumber() || v->kind() == JsonValue::Kind::Double)
            badRequest("'seed' must be an integer");
        req.seed = v->asUint64();
    }
    if (const JsonValue *v = root.find("sparsity")) {
        req.sparsity = v->asDouble();
        if (!(req.sparsity >= 0.0) || req.sparsity >= 1.0 ||
            !std::isfinite(req.sparsity))
            badRequest("'sparsity' must be in [0, 1)");
    }
    if (const JsonValue *v = root.find("repeat"))
        req.repeat = asIndex(*v, "repeat", 1);
    if (const JsonValue *v = root.find("use_cache"))
        req.use_cache = v->asBool();

    if (const JsonValue *v = root.find("budget_cycles"))
        req.budget_cycles = asIndex(*v, "budget_cycles", 0);
    if (const JsonValue *v = root.find("budget_wall_ms"))
        req.budget_wall_ms = asIndex(*v, "budget_wall_ms", 0);
    if (const JsonValue *v = root.find("retries"))
        req.retries = asIndex(*v, "retries", 0);
    if (const JsonValue *v = root.find("top_k")) {
        if (req.type != RequestType::Tune &&
            req.type != RequestType::Explore)
            badRequest("'top_k' only applies to tune and explore "
                       "requests");
        req.top_k = asIndex(*v, "top_k", 1);
    }
    if (const JsonValue *v = root.find("axes")) {
        if (req.type != RequestType::Explore)
            badRequest("'axes' only applies to explore requests");
        if (!v->isString() || v->asString().empty())
            badRequest("'axes' must be a non-empty string");
        req.axes = v->asString();
    }

    if ((req.type == RequestType::Tune ||
         req.type == RequestType::Explore) &&
        req.layer.kind != LayerKind::Gemm &&
        req.layer.kind != LayerKind::Linear &&
        req.layer.kind != LayerKind::Convolution)
        badRequest(t + " supports conv|gemm|linear layers");

    return req;
}

HardwareConfig
applyOverrides(const HardwareConfig &cfg,
               const std::vector<std::pair<std::string, std::string>>
                   &overrides)
{
    if (overrides.empty())
        return cfg;

    std::set<std::string> patched;
    for (const auto &[key, value] : overrides) {
        (void)value;
        patched.insert(key);
    }

    // Drop every line whose key is being overridden, keep the rest.
    std::istringstream in(cfg.toConfigText());
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (patched.find(configLineKey(line)) == patched.end())
            out << line << "\n";
    }
    for (const auto &[key, value] : overrides)
        out << key << " = " << value << "\n";

    try {
        return HardwareConfig::parse(out.str(), "<overrides>");
    } catch (const std::exception &e) {
        throw ProtocolError(kErrBadConfig, e.what());
    }
}

HardwareConfig
resolveConfig(const JobRequest &req, const HardwareConfig &base)
{
    HardwareConfig cfg;
    try {
        if (!req.config_text.empty())
            cfg = HardwareConfig::parse(req.config_text, "<config_text>");
        else if (!req.config_path.empty())
            cfg = HardwareConfig::parseFile(req.config_path);
        else if (req.preset == "tpu")
            cfg = HardwareConfig::tpuLike(req.preset_ms);
        else if (req.preset == "maeri")
            cfg = HardwareConfig::maeriLike(req.preset_ms, req.preset_bw);
        else if (req.preset == "sigma")
            cfg = HardwareConfig::sigmaLike(req.preset_ms, req.preset_bw);
        else if (req.preset == "snapea")
            cfg = HardwareConfig::snapeaLike(req.preset_ms, req.preset_bw);
        else
            cfg = base;
    } catch (const std::exception &e) {
        throw ProtocolError(kErrBadConfig, e.what());
    }

    cfg = applyOverrides(cfg, req.overrides);

    try {
        cfg.validate();
    } catch (const std::exception &e) {
        throw ProtocolError(kErrBadConfig, e.what());
    }
    return cfg;
}

} // namespace stonne::service
