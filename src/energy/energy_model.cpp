#include "energy/energy_model.hpp"

#include <fstream>
#include <functional>
#include <sstream>

#include "common/logging.hpp"
#include "energy/area_model.hpp"

namespace stonne {

namespace detail {

/** Shared `key = value` table parser for energy/area tables. */
void
parseDoubleTable(const std::string &text,
                 const std::function<bool(const std::string &, double)>
                     &assign)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::string key, eq;
        double value = 0.0;
        if (!(ls >> key))
            continue;
        fatalIf(!(ls >> eq >> value) || eq != "=",
                "table line ", lineno, ": expected 'key = value'");
        fatalIf(value < 0.0, "table line ", lineno,
                ": costs must be non-negative");
        fatalIf(!assign(key, value), "table line ", lineno,
                ": unknown key '", key, "'");
    }
}

} // namespace detail

EnergyTable
EnergyTable::forDataType(DataType t)
{
    EnergyTable e;
    double scale = 1.0;
    switch (t) {
      case DataType::FP8:
        scale = 1.0;
        break;
      case DataType::INT8:
        scale = 0.8;
        break;
      case DataType::FP16:
        scale = 1.9;
        break;
      case DataType::FP32:
        scale = 3.5;
        break;
    }
    e.mult_pj *= scale;
    e.switch_hop_pj *= scale;
    e.link_hop_pj *= scale;
    e.gb_read_pj *= scale;
    e.gb_write_pj *= scale;
    return e;
}

EnergyTable
EnergyTable::parse(const std::string &text)
{
    EnergyTable t;
    detail::parseDoubleTable(text, [&](const std::string &k, double v) {
        if (k == "mult_pj") t.mult_pj = v;
        else if (k == "adder2_pj") t.adder2_pj = v;
        else if (k == "adder3_pj") t.adder3_pj = v;
        else if (k == "accumulator_pj") t.accumulator_pj = v;
        else if (k == "switch_hop_pj") t.switch_hop_pj = v;
        else if (k == "link_hop_pj") t.link_hop_pj = v;
        else if (k == "gb_read_pj") t.gb_read_pj = v;
        else if (k == "gb_write_pj") t.gb_write_pj = v;
        else if (k == "dram_byte_pj") t.dram_byte_pj = v;
        else if (k == "leak_pj_um2_cycle") t.leak_pj_um2_cycle = v;
        else return false;
        return true;
    });
    return t;
}

EnergyTable
EnergyTable::parseFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open energy table '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

EnergyModel::EnergyModel(const HardwareConfig &cfg, EnergyTable table)
    : cfg_(cfg), table_(table),
      total_area_um2_(AreaModel(cfg).compute().total())
{
}

EnergyBreakdown
EnergyModel::compute(const StatsRegistry &stats, cycle_t cycles) const
{
    EnergyBreakdown e;
    const double pj_to_uj = 1e-6;

    const bool art = cfg_.rn_type == RnType::Art ||
                     cfg_.rn_type == RnType::ArtAcc;
    const double adder_pj = art ? table_.adder3_pj : table_.adder2_pj;

    for (const StatCounter &c : stats.counters()) {
        const auto v = static_cast<double>(c.value);
        double pj = 0.0;
        if (c.name == "mn.mult_ops")
            pj = v * table_.mult_pj;
        else if (c.name == "mn.forward_ops" || c.name == "mn.psum_forwards")
            pj = v * table_.link_hop_pj;
        else if (c.name == "rn.adder_ops")
            pj = v * adder_pj;
        else if (c.name == "rn.accumulator_ops")
            pj = v * table_.accumulator_pj;
        else if (c.name == "rn.horizontal_hops" ||
                 c.name == "rn.forward_hops")
            pj = v * table_.link_hop_pj;
        else if (c.name == "dn.switch_hops")
            pj = v * table_.switch_hop_pj;
        else if (c.name == "dn.link_hops")
            pj = v * table_.link_hop_pj;
        else if (c.name == "gb.reads")
            pj = v * table_.gb_read_pj;
        else if (c.name == "gb.writes")
            pj = v * table_.gb_write_pj;
        else if (c.name == "dram.bytes")
            pj = v * table_.dram_byte_pj;
        else
            continue; // package/stall counters carry no energy

        switch (c.group) {
          case StatGroup::GlobalBuffer:
            e.gb_uj += pj * pj_to_uj;
            break;
          case StatGroup::DistributionNetwork:
            e.dn_uj += pj * pj_to_uj;
            break;
          case StatGroup::MultiplierNetwork:
            e.mn_uj += pj * pj_to_uj;
            break;
          case StatGroup::ReductionNetwork:
            e.rn_uj += pj * pj_to_uj;
            break;
          case StatGroup::Dram:
            e.dram_uj += pj * pj_to_uj;
            break;
          case StatGroup::Other:
            break;
        }
    }

    e.static_uj = static_cast<double>(cycles) * total_area_um2_ *
        table_.leak_pj_um2_cycle * pj_to_uj;
    return e;
}

} // namespace stonne
