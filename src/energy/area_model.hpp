/**
 * @file
 * Table-based area model (28 nm, Section III Output module).
 *
 * Area is computed from the architectural parameters and a per-instance
 * cost table, mirroring the paper's methodology. The constants are
 * calibrated to reproduce Figure 5c's structure: the Global Buffer SRAM
 * dominates (70-82 % of total area), ART's 3:1 adder nodes are larger
 * than FAN's 2:1 adders (SIGMA ~13 % smaller than MAERI), and the
 * systolic TPU composition is the leanest.
 */

#ifndef STONNE_ENERGY_AREA_MODEL_HPP
#define STONNE_ENERGY_AREA_MODEL_HPP

#include <string>

#include "common/config.hpp"

namespace stonne {

/** Per-instance area costs in um^2 (28 nm). */
struct AreaTable {
    double mult_um2 = 400.0;        //!< FP8 multiplier switch
    double adder2_um2 = 250.0;      //!< 2:1 adder node (FAN)
    double adder3_um2 = 500.0;      //!< 3:1 adder node + horizontal link
    double accumulator_um2 = 150.0; //!< accumulator entry / OS register
    double tree_switch_um2 = 60.0;  //!< distribution-tree switch
    double benes_switch_um2 = 20.0; //!< tiny 2x2 Benes switch
    double pop_link_um2 = 15.0;     //!< point-to-point injection link
    double gb_um2_per_kib = 6500.0; //!< SRAM macro per KiB

    static AreaTable forDataType(DataType t);

    /**
     * Parse a `key = value` area table. Keys: mult_um2, adder2_um2,
     * adder3_um2, accumulator_um2, tree_switch_um2, benes_switch_um2,
     * pop_link_um2, gb_um2_per_kib.
     */
    static AreaTable parse(const std::string &text);

    /** Load a table file from disk. */
    static AreaTable parseFile(const std::string &path);
};

/** Component-level area split (um^2). */
struct AreaBreakdown {
    double gb_um2 = 0.0;
    double dn_um2 = 0.0;
    double mn_um2 = 0.0;
    double rn_um2 = 0.0;

    double total() const { return gb_um2 + dn_um2 + mn_um2 + rn_um2; }
};

/** Computes area from the architectural parameters. */
class AreaModel
{
  public:
    AreaModel(const HardwareConfig &cfg, AreaTable table);

    explicit AreaModel(const HardwareConfig &cfg)
        : AreaModel(cfg, AreaTable::forDataType(cfg.data_type)) {}

    AreaBreakdown compute() const;

    const AreaTable &table() const { return table_; }

  private:
    HardwareConfig cfg_;
    AreaTable table_;
};

} // namespace stonne

#endif // STONNE_ENERGY_AREA_MODEL_HPP
