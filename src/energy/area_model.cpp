#include "energy/area_model.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/logging.hpp"

namespace stonne {

namespace detail {
void parseDoubleTable(
    const std::string &text,
    const std::function<bool(const std::string &, double)> &assign);
} // namespace detail

AreaTable
AreaTable::forDataType(DataType t)
{
    AreaTable a;
    // Compute logic scales with operand width; the psum datapath stays
    // FP32 regardless, so only the multiplier and switch widths move.
    double scale = 1.0;
    switch (t) {
      case DataType::FP8:
      case DataType::INT8:
        scale = 1.0;
        break;
      case DataType::FP16:
        scale = 1.8;
        break;
      case DataType::FP32:
        scale = 3.2;
        break;
    }
    a.mult_um2 *= scale;
    a.tree_switch_um2 *= scale;
    a.benes_switch_um2 *= scale;
    a.pop_link_um2 *= scale;
    return a;
}

AreaTable
AreaTable::parse(const std::string &text)
{
    AreaTable t;
    detail::parseDoubleTable(text, [&](const std::string &k, double v) {
        if (k == "mult_um2") t.mult_um2 = v;
        else if (k == "adder2_um2") t.adder2_um2 = v;
        else if (k == "adder3_um2") t.adder3_um2 = v;
        else if (k == "accumulator_um2") t.accumulator_um2 = v;
        else if (k == "tree_switch_um2") t.tree_switch_um2 = v;
        else if (k == "benes_switch_um2") t.benes_switch_um2 = v;
        else if (k == "pop_link_um2") t.pop_link_um2 = v;
        else if (k == "gb_um2_per_kib") t.gb_um2_per_kib = v;
        else return false;
        return true;
    });
    return t;
}

AreaTable
AreaTable::parseFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open area table '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

AreaModel::AreaModel(const HardwareConfig &cfg, AreaTable table)
    : cfg_(cfg), table_(table)
{
    cfg_.validate();
}

namespace {

index_t
log2Ceil(index_t v)
{
    index_t l = 0;
    index_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

} // namespace

AreaBreakdown
AreaModel::compute() const
{
    AreaBreakdown a;
    const auto ms = static_cast<double>(cfg_.ms_size);

    a.gb_um2 = static_cast<double>(cfg_.gb_size_kib) * table_.gb_um2_per_kib;
    a.mn_um2 = ms * table_.mult_um2;

    switch (cfg_.dn_type) {
      case DnType::Tree:
        a.dn_um2 = (ms - 1) * table_.tree_switch_um2;
        break;
      case DnType::Benes:
        a.dn_um2 = static_cast<double>(2 * log2Ceil(cfg_.ms_size) + 1) *
            (ms / 2.0) * table_.benes_switch_um2;
        break;
      case DnType::PointToPoint:
        a.dn_um2 = ms * table_.pop_link_um2;
        break;
    }

    switch (cfg_.rn_type) {
      case RnType::Art:
        a.rn_um2 = (ms - 1) * table_.adder3_um2;
        break;
      case RnType::ArtAcc:
        a.rn_um2 = (ms - 1) * table_.adder3_um2 +
            static_cast<double>(cfg_.accumulator_size) *
            table_.accumulator_um2;
        break;
      case RnType::Fan:
        a.rn_um2 = (ms - 1) * table_.adder2_um2;
        break;
      case RnType::Linear:
        // One output-stationary accumulator register per PE.
        a.rn_um2 = ms * table_.accumulator_um2;
        break;
    }
    return a;
}

} // namespace stonne
