/**
 * @file
 * Table-based energy model (Accelergy-style, Section III Output module).
 *
 * The paper derives per-action energy costs by synthesizing each module
 * (Synopsys DC + Cadence Innovus, 28 nm) and multiplies them by the
 * cycle-level activity counts the simulator produces. Synthesis being
 * unavailable here, the table below is calibrated so that the *relative*
 * structure of the paper's results holds: wide-accumulate reduction
 * networks dominate dynamic energy (Fig 5b: 84 / 58 / 43 % for TPU /
 * MAERI / SIGMA), ART's 3:1 adders cost more than FAN's 2:1 adders, and
 * leakage scales with area and runtime (the static savings of use
 * case 3).
 */

#ifndef STONNE_ENERGY_ENERGY_MODEL_HPP
#define STONNE_ENERGY_ENERGY_MODEL_HPP

#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace stonne {

/** Per-action energy costs in pJ. */
struct EnergyTable {
    double mult_pj = 0.25;        //!< FP8 multiply
    double adder2_pj = 1.2;       //!< 2:1 FP32 psum adder (FAN)
    double adder3_pj = 3.4;       //!< 3:1 FP32 psum adder (ART node)
    double accumulator_pj = 2.4;  //!< accumulator read-modify-write
    double switch_hop_pj = 0.06;  //!< one DN switch traversal
    double link_hop_pj = 0.04;    //!< one wire/forwarding-link traversal
    double gb_read_pj = 1.4;      //!< one GB element read
    double gb_write_pj = 1.6;     //!< one GB element write
    double dram_byte_pj = 10.0;   //!< one DRAM byte transferred
    double leak_pj_um2_cycle = 4.0e-5; //!< leakage per um^2 per cycle

    /** Scale the compute costs for a data format. */
    static EnergyTable forDataType(DataType t);

    /**
     * Parse a `key = value` energy table ("STONNE includes different
     * energy and area tables that can be used"). Unknown keys are
     * fatal; missing keys keep their defaults. Keys: mult_pj,
     * adder2_pj, adder3_pj, accumulator_pj, switch_hop_pj, link_hop_pj,
     * gb_read_pj, gb_write_pj, dram_byte_pj, leak_pj_um2_cycle.
     */
    static EnergyTable parse(const std::string &text);

    /** Load a table file from disk. */
    static EnergyTable parseFile(const std::string &path);
};

/** Dynamic + static energy split by architectural component (uJ). */
struct EnergyBreakdown {
    double gb_uj = 0.0;
    double dn_uj = 0.0;
    double mn_uj = 0.0;
    double rn_uj = 0.0;
    double dram_uj = 0.0;
    double static_uj = 0.0;

    double
    total() const
    {
        return gb_uj + dn_uj + mn_uj + rn_uj + dram_uj + static_uj;
    }
};

/** Computes energy from activity counters and the configuration. */
class EnergyModel
{
  public:
    EnergyModel(const HardwareConfig &cfg, EnergyTable table);

    explicit EnergyModel(const HardwareConfig &cfg)
        : EnergyModel(cfg, EnergyTable::forDataType(cfg.data_type)) {}

    /**
     * Energy for the given activity counts over `cycles` of runtime.
     * Static energy is leakage over the whole accelerator area.
     */
    EnergyBreakdown compute(const StatsRegistry &stats,
                            cycle_t cycles) const;

    const EnergyTable &table() const { return table_; }

  private:
    HardwareConfig cfg_;
    EnergyTable table_;
    double total_area_um2_;
};

} // namespace stonne

#endif // STONNE_ENERGY_ENERGY_MODEL_HPP
