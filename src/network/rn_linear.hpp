/**
 * @file
 * Linear Reduction Network (LRN) — rigid-accelerator reduction.
 *
 * The linear accumulate-and-shift chain used by the TPU, Eyeriss and
 * ShiDianNao: each product is accumulated into the running value in
 * sequence. Fixed cluster boundaries only (the systolic engine arranges
 * reductions along array columns). A cluster of n products costs n - 1
 * serial additions with latency n - 1 when not overlapped.
 */

#ifndef STONNE_NETWORK_RN_LINEAR_HPP
#define STONNE_NETWORK_RN_LINEAR_HPP

#include "network/unit.hpp"

namespace stonne {

/** TPU-style linear accumulation chain. */
class LinearReductionNetwork final : public ReductionNetwork
{
  public:
    LinearReductionNetwork(index_t ms_size, StatsRegistry &stats);

    index_t reduceCluster(index_t cluster_size) override;
    void bulkReduce(index_t clusters, index_t cluster_size) override;
    index_t latency(index_t cluster_size) const override;
    bool supportsVariableClusters() const override { return false; }
    bool supportsAccumulation() const override { return true; }

    /** Account `n` per-PE accumulator firings (OS dataflow MACs). */
    void accumulate(index_t n) override;

    count_t adderOps() const { return adder_ops_->value; }

    void cycle() override;
    void reset() override;
    std::string name() const override { return "rn_linear"; }

    /** Issue/activity state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const override;

  private:
    StatCounter *adder_ops_;
    StatCounter *pipeline_occ_;
};

} // namespace stonne

#endif // STONNE_NETWORK_RN_LINEAR_HPP
