#include "network/systolic.hpp"

#include <vector>

#include "common/logging.hpp"

namespace stonne {

SystolicArray::SystolicArray(index_t rows, index_t cols,
                             PointToPointNetwork &dn, MultiplierArray &mn,
                             LinearReductionNetwork &rn, GlobalBuffer &gb)
    : rows_(rows), cols_(cols), dn_(dn), mn_(mn), rn_(rn), gb_(gb)
{
    fatalIf(rows <= 0 || cols <= 0, "systolic array needs positive dims");
    fatalIf(rows * cols != dn.msSize(),
            "systolic array size ", rows * cols,
            " does not match the DN endpoint count ", dn.msSize());
}

cycle_t
SystolicArray::runTile(const Tensor &a, const Tensor &b, Tensor &c,
                       index_t m0, index_t n0, index_t mt, index_t nt,
                       count_t &macs)
{
    const index_t k = a.dim(1);
    const auto idx = [&](index_t i, index_t j) {
        return static_cast<std::size_t>(i * nt + j);
    };

    std::vector<float> acc(static_cast<std::size_t>(mt * nt), 0.0f);
    std::vector<float> a_reg(acc.size(), 0.0f), b_reg(acc.size(), 0.0f);
    std::vector<char> a_val(acc.size(), 0), b_val(acc.size(), 0);
    std::vector<float> a_nxt(acc.size()), b_nxt(acc.size());
    std::vector<char> a_vnx(acc.size()), b_vnx(acc.size());

    // Compute wavefront: the last product fires at PE (mt-1, nt-1) in
    // cycle (k - 1) + (mt - 1) + (nt - 1).
    const cycle_t compute_cycles =
        static_cast<cycle_t>(k + mt + nt - 2);

    for (cycle_t t = 0; t < compute_cycles; ++t) {
        gb_.nextCycle();
        dn_.cycle();

        index_t fired = 0, forwards = 0;
        for (index_t i = 0; i < mt; ++i) {
            for (index_t j = 0; j < nt; ++j) {
                // Operand arriving from the west (or the edge injector).
                float av = 0.0f;
                char avalid = 0;
                if (j == 0) {
                    const auto tt = static_cast<index_t>(t);
                    if (tt >= i && tt < i + k) {
                        av = a.at(m0 + i, tt - i);
                        avalid = 1;
                        gb_.read();
                        DataPackage pkg;
                        pkg.value = av;
                        pkg.dest_lo = i * cols_;
                        pkg.dest_hi = i * cols_ + 1;
                        pkg.kind = PackageKind::Input;
                        panicIf(!dn_.inject(pkg),
                                "systolic edge injection rejected");
                    }
                } else {
                    av = a_reg[idx(i, j - 1)];
                    avalid = a_val[idx(i, j - 1)];
                    if (avalid)
                        ++forwards;
                }
                // Operand arriving from the north (or the edge injector).
                float bv = 0.0f;
                char bvalid = 0;
                if (i == 0) {
                    const auto tt = static_cast<index_t>(t);
                    if (tt >= j && tt < j + k) {
                        bv = b.at(tt - j, n0 + j);
                        bvalid = 1;
                        gb_.read();
                        DataPackage pkg;
                        pkg.value = bv;
                        pkg.dest_lo = j;
                        pkg.dest_hi = j + 1;
                        pkg.kind = PackageKind::Weight;
                        panicIf(!dn_.inject(pkg),
                                "systolic edge injection rejected");
                    }
                } else {
                    bv = b_reg[idx(i - 1, j)];
                    bvalid = b_val[idx(i - 1, j)];
                    if (bvalid)
                        ++forwards;
                }
                a_nxt[idx(i, j)] = av;
                a_vnx[idx(i, j)] = avalid;
                b_nxt[idx(i, j)] = bv;
                b_vnx[idx(i, j)] = bvalid;
                if (avalid && bvalid) {
                    acc[idx(i, j)] += av * bv;
                    ++fired;
                }
            }
        }
        a_reg.swap(a_nxt);
        a_val.swap(a_vnx);
        b_reg.swap(b_nxt);
        b_val.swap(b_vnx);
        mn_.fireMultipliers(fired);
        mn_.forwardOperands(forwards);
        rn_.accumulate(fired);
        macs += static_cast<count_t>(fired);
    }

    // Drain the output-stationary accumulators through the linear
    // reduction chain into the GB (covered by the per-tile overhead).
    for (index_t i = 0; i < mt; ++i) {
        for (index_t j = 0; j < nt; ++j) {
            if (!gb_.canWrite())
                gb_.nextCycle();
            gb_.write();
            c.at(m0 + i, n0 + j) = acc[idx(i, j)];
        }
    }

    return compute_cycles + kTileOverhead;
}

SystolicResult
SystolicArray::run(const Tensor &a, const Tensor &b, Tensor &c)
{
    fatalIf(a.rank() != 2 || b.rank() != 2 || c.rank() != 2,
            "systolic GEMM expects rank-2 operands");
    const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    fatalIf(b.dim(0) != k, "systolic GEMM inner dimension mismatch");
    fatalIf(c.dim(0) != m || c.dim(1) != n,
            "systolic GEMM output shape mismatch");

    SystolicResult res;
    for (index_t m0 = 0; m0 < m; m0 += rows_) {
        const index_t mt = std::min(rows_, m - m0);
        for (index_t n0 = 0; n0 < n; n0 += cols_) {
            const index_t nt = std::min(cols_, n - n0);
            res.cycles += runTile(a, b, c, m0, n0, mt, nt, res.macs);
            ++res.tiles;
        }
    }
    return res;
}

} // namespace stonne
