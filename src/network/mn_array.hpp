/**
 * @file
 * Multiplier Network (MN): the array of multiplier switches.
 *
 * Two topologies from the paper:
 *  - Linear Multiplier Network (LMN): forwarding links between each pair
 *    of neighbouring multiplier switches exploit spatio-temporal reuse
 *    (the convolution sliding window), cutting DN and memory pressure.
 *  - Disabled Multiplier Network (DMN): no forwarding links; pure GEMM
 *    fabrics (SIGMA, SpArch) where sliding-window reuse does not exist.
 *
 * Multiplier switches also support a *forwarder* configuration that
 * passes psums from the GB into the RN so folding can resume partial
 * results (Section IV-A.2).
 */

#ifndef STONNE_NETWORK_MN_ARRAY_HPP
#define STONNE_NETWORK_MN_ARRAY_HPP

#include "common/config.hpp"
#include "network/unit.hpp"

namespace stonne {

/** Array of multiplier switches with optional neighbour forwarding. */
class MultiplierArray final : public Unit
{
  public:
    MultiplierArray(index_t ms_size, MnType type, StatsRegistry &stats);

    /** Account `n` multiplications fired this cycle. */
    void fireMultipliers(index_t n);

    /**
     * Account `n_mults` multiplications spread over `n_cycles`
     * steady-state cycles — the closed-form equivalent of calling
     * fireMultipliers(n_mults / n_cycles) each cycle. Used by the
     * fast-forward engine.
     */
    void bulkAdvance(cycle_t n_cycles, index_t n_mults);

    /** Account `n` operand hand-offs over neighbour forwarding links.
     *  Only legal on the linear topology. */
    void forwardOperands(index_t n);

    /** Account `n` switches configured as psum forwarders this cycle. */
    void forwardPsums(index_t n);

    /** Whether neighbour forwarding links exist. */
    bool hasForwardingLinks() const { return type_ == MnType::Linear; }

    index_t msSize() const { return ms_size_; }
    MnType type() const { return type_; }

    count_t multOps() const { return mult_ops_->value; }
    count_t forwardOps() const { return forward_ops_->value; }

    void cycle() override;
    void reset() override;
    std::string name() const override { return "mn_array"; }

    /** Issue/activity state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const override;

  private:
    index_t ms_size_;
    MnType type_;
    StatCounter *mult_ops_;
    StatCounter *forward_ops_;
    StatCounter *psum_forwards_;
    StatCounter *busy_cycles_;
};

} // namespace stonne

#endif // STONNE_NETWORK_MN_ARRAY_HPP
