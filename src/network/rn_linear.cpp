#include "network/rn_linear.hpp"

#include "common/logging.hpp"

namespace stonne {

LinearReductionNetwork::LinearReductionNetwork(index_t ms_size,
                                               StatsRegistry &stats)
    : ReductionNetwork(ms_size),
      adder_ops_(&stats.counter("rn.adder_ops",
                                StatGroup::ReductionNetwork)),
      pipeline_occ_(&stats.counter("rn.pipeline_occ",
                                   StatGroup::ReductionNetwork,
                                   StatKind::Occupancy))
{
    fatalIf(ms_size <= 0, "linear RN needs at least one element");
}

index_t
LinearReductionNetwork::reduceCluster(index_t cluster_size)
{
    panicIf(cluster_size <= 0 || cluster_size > ms_size_,
            "linear RN cluster size ", cluster_size, " out of range");
    if (cluster_size == 1)
        return 0;
    adder_ops_->value += static_cast<count_t>(cluster_size - 1);
    pipeline_occ_->value += static_cast<count_t>(latency(cluster_size));
    return latency(cluster_size);
}

void
LinearReductionNetwork::bulkReduce(index_t clusters, index_t cluster_size)
{
    panicIf(clusters < 0, "negative linear RN cluster count ", clusters);
    panicIf(cluster_size <= 0 || cluster_size > ms_size_,
            "linear RN cluster size ", cluster_size, " out of range");
    if (clusters == 0 || cluster_size == 1)
        return;
    adder_ops_->value += static_cast<count_t>(clusters * (cluster_size - 1));
    pipeline_occ_->value +=
        static_cast<count_t>(clusters * latency(cluster_size));
}

index_t
LinearReductionNetwork::latency(index_t cluster_size) const
{
    panicIf(cluster_size <= 0, "latency of an empty cluster");
    return cluster_size - 1;
}

void
LinearReductionNetwork::accumulate(index_t n)
{
    panicIf(n < 0, "invalid accumulation count");
    adder_ops_->value += static_cast<count_t>(n);
}

void
LinearReductionNetwork::cycle()
{
}

void
LinearReductionNetwork::reset()
{
}

void
LinearReductionNetwork::dumpState(std::ostream &os) const
{
    os << name() << ": chain over " << ms_size_ << " switches, adder ops "
       << adder_ops_->value << "\n";
}

} // namespace stonne
