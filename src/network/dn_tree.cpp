#include "network/dn_tree.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace stonne {

namespace {

index_t
log2Ceil(index_t v)
{
    index_t l = 0;
    index_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

} // namespace

TreeDistributionNetwork::TreeDistributionNetwork(index_t ms_size,
                                                 index_t bandwidth,
                                                 StatsRegistry &stats)
    : DistributionNetwork(DnKind::Tree, ms_size, bandwidth),
      levels_(log2Ceil(ms_size)),
      packages_(&stats.counter("dn.packages",
                               StatGroup::DistributionNetwork)),
      switch_hops_(&stats.counter("dn.switch_hops",
                                  StatGroup::DistributionNetwork)),
      link_hops_(&stats.counter("dn.link_hops",
                                StatGroup::DistributionNetwork)),
      stalls_(&stats.counter("dn.stalls", StatGroup::DistributionNetwork))
{
    inject_queue_occ_ = &stats.counter("dn.inject_queue_occ",
                                       StatGroup::DistributionNetwork,
                                       StatKind::Occupancy);
    fatalIf(ms_size <= 0 || (ms_size & (ms_size - 1)) != 0,
            "tree DN needs a power-of-two number of leaves");
    fatalIf(bandwidth <= 0 || bandwidth > ms_size,
            "tree DN bandwidth out of range");
}

index_t
TreeDistributionNetwork::traversalSwitches(index_t fanout) const
{
    // A multicast to a contiguous range of `fanout` leaves activates the
    // switches of the spanning subtree: roughly one path down from the
    // root (levels_) plus one switch per additional covered leaf.
    return levels_ + (fanout - 1);
}

bool
TreeDistributionNetwork::inject(const DataPackage &pkg)
{
    panicIf(pkg.dest_lo < 0 || pkg.dest_hi > ms_size_ ||
            pkg.dest_lo >= pkg.dest_hi,
            "tree DN package with invalid destination range");

    if (issued_this_cycle_ >= bandwidth_) {
        ++stalls_->value;
        return false;
    }
    // One package per leaf per cycle: overlapping ranges conflict on the
    // shared subtree links.
    for (std::size_t i = 0; i < range_lo_.size(); ++i) {
        if (pkg.dest_lo < range_hi_[i] && range_lo_[i] < pkg.dest_hi) {
            ++stalls_->value;
            return false;
        }
    }

    ++issued_this_cycle_;
    range_lo_.push_back(pkg.dest_lo);
    range_hi_.push_back(pkg.dest_hi);
    ++packages_->value;
    const index_t hops = traversalSwitches(pkg.fanout());
    switch_hops_->value += static_cast<count_t>(hops);
    link_hops_->value += static_cast<count_t>(hops + pkg.fanout());
    return true;
}

index_t
TreeDistributionNetwork::injectBulk(index_t n, index_t fanout,
                                    PackageKind kind)
{
    (void)kind;
    panicIf(n < 0 || fanout <= 0 || fanout > ms_size_,
            "tree DN bulk injection with invalid arguments");
    const index_t accepted =
        std::min(n, bandwidth_ - issued_this_cycle_);
    if (accepted <= 0) {
        if (n > 0)
            ++stalls_->value;
        return 0;
    }
    issued_this_cycle_ += accepted;
    packages_->value += static_cast<count_t>(accepted);
    const index_t hops = traversalSwitches(fanout);
    switch_hops_->value += static_cast<count_t>(accepted * hops);
    link_hops_->value += static_cast<count_t>(accepted * (hops + fanout));
    if (accepted < n)
        ++stalls_->value;
    return accepted;
}

void
TreeDistributionNetwork::bulkAdvance(cycle_t n_cycles, index_t n_packages,
                                     index_t fanout, PackageKind kind)
{
    (void)kind;
    panicIf(n_packages < 0 || fanout <= 0 || fanout > ms_size_,
            "tree DN bulk advance with invalid arguments");
    panicIf(static_cast<count_t>(n_packages)
                > n_cycles * static_cast<count_t>(bandwidth_),
            "tree DN bulk advance exceeds bandwidth: ", n_packages,
            " packages in ", n_cycles, " cycles at ", bandwidth_,
            " packages/cycle");
    packages_->value += static_cast<count_t>(n_packages);
    const index_t hops = traversalSwitches(fanout);
    switch_hops_->value += static_cast<count_t>(n_packages * hops);
    link_hops_->value += static_cast<count_t>(n_packages * (hops + fanout));
}

void
TreeDistributionNetwork::cycle()
{
    issued_this_cycle_ = 0;
    range_lo_.clear();
    range_hi_.clear();
}

void
TreeDistributionNetwork::reset()
{
    cycle();
}

void
TreeDistributionNetwork::dumpState(std::ostream &os) const
{
    os << name() << ": " << ms_size_ << " leaves over " << levels_
       << " levels, bandwidth " << bandwidth_ << ", issued this cycle "
       << issued_this_cycle_ << " (" << range_lo_.size()
       << " live ranges), delivered " << packages_->value << ", stalls "
       << stalls_->value << "\n";
    for (std::size_t i = 0; i < range_lo_.size(); ++i)
        os << "  in-flight range [" << range_lo_[i] << ", "
           << range_hi_[i] << ")\n";
}

void
TreeDistributionNetwork::saveState(ArchiveWriter &ar) const
{
    ar.putI64(issued_this_cycle_);
    ar.putU64(range_lo_.size());
    for (std::size_t i = 0; i < range_lo_.size(); ++i) {
        ar.putI64(range_lo_[i]);
        ar.putI64(range_hi_[i]);
    }
}

void
TreeDistributionNetwork::loadState(ArchiveReader &ar)
{
    issued_this_cycle_ = ar.getI64();
    const std::uint64_t n = ar.getU64();
    range_lo_.clear();
    range_hi_.clear();
    range_lo_.reserve(static_cast<std::size_t>(n));
    range_hi_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        range_lo_.push_back(ar.getI64());
        range_hi_.push_back(ar.getI64());
    }
}

} // namespace stonne
