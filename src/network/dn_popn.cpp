#include "network/dn_popn.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace stonne {

PointToPointNetwork::PointToPointNetwork(index_t ms_size, index_t bandwidth,
                                         StatsRegistry &stats)
    : DistributionNetwork(DnKind::PointToPoint, ms_size, bandwidth),
      packages_(&stats.counter("dn.packages",
                               StatGroup::DistributionNetwork)),
      link_hops_(&stats.counter("dn.link_hops",
                                StatGroup::DistributionNetwork)),
      stalls_(&stats.counter("dn.stalls", StatGroup::DistributionNetwork))
{
    inject_queue_occ_ = &stats.counter("dn.inject_queue_occ",
                                       StatGroup::DistributionNetwork,
                                       StatKind::Occupancy);
    fatalIf(ms_size <= 0, "point-to-point DN needs endpoints");
    fatalIf(bandwidth <= 0 || bandwidth > ms_size,
            "point-to-point DN bandwidth out of range");
}

bool
PointToPointNetwork::inject(const DataPackage &pkg)
{
    panicIf(pkg.dest_lo < 0 || pkg.dest_hi > ms_size_ ||
            pkg.dest_lo >= pkg.dest_hi,
            "point-to-point DN package with invalid destination range");
    fatalIf(pkg.fanout() != 1,
            "point-to-point DN only supports unicast delivery");

    if (issued_this_cycle_ >= bandwidth_) {
        ++stalls_->value;
        return false;
    }
    ++issued_this_cycle_;
    ++packages_->value;
    ++link_hops_->value;
    return true;
}

index_t
PointToPointNetwork::injectBulk(index_t n, index_t fanout, PackageKind kind)
{
    (void)kind;
    panicIf(n < 0, "point-to-point DN bulk injection with invalid count");
    fatalIf(fanout != 1,
            "point-to-point DN only supports unicast delivery");
    const index_t accepted =
        std::min(n, bandwidth_ - issued_this_cycle_);
    if (accepted <= 0) {
        if (n > 0)
            ++stalls_->value;
        return 0;
    }
    issued_this_cycle_ += accepted;
    packages_->value += static_cast<count_t>(accepted);
    link_hops_->value += static_cast<count_t>(accepted);
    if (accepted < n)
        ++stalls_->value;
    return accepted;
}

void
PointToPointNetwork::bulkAdvance(cycle_t n_cycles, index_t n_packages,
                                 index_t fanout, PackageKind kind)
{
    (void)kind;
    panicIf(n_packages < 0,
            "point-to-point DN bulk advance with invalid count");
    fatalIf(fanout != 1,
            "point-to-point DN only supports unicast delivery");
    panicIf(static_cast<count_t>(n_packages)
                > n_cycles * static_cast<count_t>(bandwidth_),
            "point-to-point DN bulk advance exceeds bandwidth: ",
            n_packages, " packages in ", n_cycles, " cycles at ",
            bandwidth_, " packages/cycle");
    packages_->value += static_cast<count_t>(n_packages);
    link_hops_->value += static_cast<count_t>(n_packages);
}

void
PointToPointNetwork::cycle()
{
    issued_this_cycle_ = 0;
}

void
PointToPointNetwork::reset()
{
    cycle();
}

void
PointToPointNetwork::dumpState(std::ostream &os) const
{
    os << name() << ": " << ms_size_ << " links, bandwidth " << bandwidth_
       << ", issued this cycle " << issued_this_cycle_ << ", delivered "
       << packages_->value << ", stalls " << stalls_->value << "\n";
}

void
PointToPointNetwork::saveState(ArchiveWriter &ar) const
{
    ar.putI64(issued_this_cycle_);
}

void
PointToPointNetwork::loadState(ArchiveReader &ar)
{
    issued_this_cycle_ = ar.getI64();
}

} // namespace stonne
