#include "network/mn_array.hpp"

#include "common/logging.hpp"

namespace stonne {

MultiplierArray::MultiplierArray(index_t ms_size, MnType type,
                                 StatsRegistry &stats)
    : ms_size_(ms_size), type_(type),
      mult_ops_(&stats.counter("mn.mult_ops",
                               StatGroup::MultiplierNetwork)),
      forward_ops_(&stats.counter("mn.forward_ops",
                                  StatGroup::MultiplierNetwork)),
      psum_forwards_(&stats.counter("mn.psum_forwards",
                                    StatGroup::MultiplierNetwork)),
      busy_cycles_(&stats.counter("mn.busy_cycles",
                                  StatGroup::MultiplierNetwork,
                                  StatKind::Occupancy))
{
    fatalIf(ms_size <= 0, "multiplier array needs at least one switch");
}

void
MultiplierArray::fireMultipliers(index_t n)
{
    panicIf(n < 0 || n > ms_size_, "fired ", n,
            " multipliers on an array of ", ms_size_);
    mult_ops_->value += static_cast<count_t>(n);
    if (n > 0)
        ++busy_cycles_->value;
}

void
MultiplierArray::bulkAdvance(cycle_t n_cycles, index_t n_mults)
{
    panicIf(n_mults < 0, "negative bulk multiplier count ", n_mults);
    panicIf(static_cast<count_t>(n_mults)
                > n_cycles * static_cast<count_t>(ms_size_),
            "bulk advance fired ", n_mults, " multipliers in ", n_cycles,
            " cycles on an array of ", ms_size_);
    mult_ops_->value += static_cast<count_t>(n_mults);
    // Steady state: every skipped cycle fired multipliers, matching one
    // fireMultipliers(n_mults / n_cycles) call per cycle.
    if (n_mults > 0)
        busy_cycles_->value += n_cycles;
}

void
MultiplierArray::forwardOperands(index_t n)
{
    panicIf(type_ != MnType::Linear,
            "operand forwarding on a network without forwarding links");
    // Each switch has two neighbour links (systolic arrays forward both
    // operands per cycle), so up to 2 * ms_size hops per cycle.
    panicIf(n < 0 || n > 2 * ms_size_, "invalid forwarding count ", n);
    forward_ops_->value += static_cast<count_t>(n);
}

void
MultiplierArray::forwardPsums(index_t n)
{
    panicIf(n < 0 || n > ms_size_, "invalid psum forward count ", n);
    psum_forwards_->value += static_cast<count_t>(n);
}

void
MultiplierArray::cycle()
{
}

void
MultiplierArray::reset()
{
}

void
MultiplierArray::dumpState(std::ostream &os) const
{
    os << name() << ": " << ms_size_ << " switches ("
       << mnTypeName(type_) << "), mult ops " << mult_ops_->value
       << ", operand forwards " << forward_ops_->value
       << ", psum forwards " << psum_forwards_->value << "\n";
}

} // namespace stonne
