#include "network/dn_benes.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace stonne {

namespace {

index_t
log2Ceil(index_t v)
{
    index_t l = 0;
    index_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

} // namespace

BenesDistributionNetwork::BenesDistributionNetwork(index_t ms_size,
                                                   index_t bandwidth,
                                                   StatsRegistry &stats)
    : DistributionNetwork(DnKind::Benes, ms_size, bandwidth),
      levels_(2 * log2Ceil(ms_size) + 1),
      packages_(&stats.counter("dn.packages",
                               StatGroup::DistributionNetwork)),
      switch_hops_(&stats.counter("dn.switch_hops",
                                  StatGroup::DistributionNetwork)),
      link_hops_(&stats.counter("dn.link_hops",
                                StatGroup::DistributionNetwork)),
      stalls_(&stats.counter("dn.stalls", StatGroup::DistributionNetwork))
{
    inject_queue_occ_ = &stats.counter("dn.inject_queue_occ",
                                       StatGroup::DistributionNetwork,
                                       StatKind::Occupancy);
    fatalIf(ms_size <= 0 || (ms_size & (ms_size - 1)) != 0,
            "Benes DN needs a power-of-two number of endpoints");
    fatalIf(bandwidth <= 0 || bandwidth > ms_size,
            "Benes DN bandwidth out of range");
}

bool
BenesDistributionNetwork::inject(const DataPackage &pkg)
{
    panicIf(pkg.dest_lo < 0 || pkg.dest_hi > ms_size_ ||
            pkg.dest_lo >= pkg.dest_hi,
            "Benes DN package with invalid destination range");

    if (issued_this_cycle_ >= bandwidth_) {
        ++stalls_->value;
        return false;
    }

    ++issued_this_cycle_;
    ++packages_->value;
    // Every delivery crosses all levels; multicast replicates inside the
    // fabric so the last levels fan out to `fanout` endpoints.
    const index_t hops = levels_ + (pkg.fanout() - 1);
    switch_hops_->value += static_cast<count_t>(hops);
    link_hops_->value += static_cast<count_t>(hops + pkg.fanout());
    return true;
}

index_t
BenesDistributionNetwork::injectBulk(index_t n, index_t fanout,
                                     PackageKind kind)
{
    (void)kind;
    panicIf(n < 0 || fanout <= 0 || fanout > ms_size_,
            "Benes DN bulk injection with invalid arguments");
    const index_t accepted =
        std::min(n, bandwidth_ - issued_this_cycle_);
    if (accepted <= 0) {
        if (n > 0)
            ++stalls_->value;
        return 0;
    }
    issued_this_cycle_ += accepted;
    packages_->value += static_cast<count_t>(accepted);
    const index_t hops = levels_ + (fanout - 1);
    switch_hops_->value += static_cast<count_t>(accepted * hops);
    link_hops_->value += static_cast<count_t>(accepted * (hops + fanout));
    if (accepted < n)
        ++stalls_->value;
    return accepted;
}

void
BenesDistributionNetwork::bulkAdvance(cycle_t n_cycles, index_t n_packages,
                                      index_t fanout, PackageKind kind)
{
    (void)kind;
    panicIf(n_packages < 0 || fanout <= 0 || fanout > ms_size_,
            "Benes DN bulk advance with invalid arguments");
    panicIf(static_cast<count_t>(n_packages)
                > n_cycles * static_cast<count_t>(bandwidth_),
            "Benes DN bulk advance exceeds bandwidth: ", n_packages,
            " packages in ", n_cycles, " cycles at ", bandwidth_,
            " packages/cycle");
    packages_->value += static_cast<count_t>(n_packages);
    const index_t hops = levels_ + (fanout - 1);
    switch_hops_->value += static_cast<count_t>(n_packages * hops);
    link_hops_->value += static_cast<count_t>(n_packages * (hops + fanout));
}

void
BenesDistributionNetwork::cycle()
{
    issued_this_cycle_ = 0;
}

void
BenesDistributionNetwork::reset()
{
    cycle();
}

void
BenesDistributionNetwork::dumpState(std::ostream &os) const
{
    os << name() << ": " << ms_size_ << " endpoints over " << levels_
       << " levels, bandwidth " << bandwidth_ << ", issued this cycle "
       << issued_this_cycle_ << ", delivered " << packages_->value
       << ", stalls " << stalls_->value << "\n";
}

void
BenesDistributionNetwork::saveState(ArchiveWriter &ar) const
{
    ar.putI64(issued_this_cycle_);
}

void
BenesDistributionNetwork::loadState(ArchiveReader &ar)
{
    issued_this_cycle_ = ar.getI64();
}

} // namespace stonne
