/**
 * @file
 * Base component abstractions of the STONNE simulation engine.
 *
 * Mirrors the paper's Figure 4 class diagram: every hardware component is
 * a Unit with a cycle() method; the Accelerator ticks every configured
 * component once per clock. The three fabric families (DN / MN / RN) each
 * have an abstract base whose concrete topologies are selected at runtime
 * from the hardware configuration.
 */

#ifndef STONNE_NETWORK_UNIT_HPP
#define STONNE_NETWORK_UNIT_HPP

#include <ostream>
#include <string>

#include "checkpoint/archive.hpp"
#include "checkpoint/checkpointable.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace stonne {

/** What a package travelling through a distribution network carries. */
enum class PackageKind {
    Weight, //!< stationary operand headed for a multiplier register
    Input,  //!< streaming operand headed for a multiplier FIFO
    Psum,   //!< partial sum forwarded to the RN for folding support
};

/**
 * One element travelling through a fabric. The destination is a
 * contiguous multiplier-switch range [dest_lo, dest_hi): unicast when the
 * range has one element, multicast otherwise, broadcast when it spans the
 * whole array.
 */
struct DataPackage {
    float value = 0.0f;
    index_t dest_lo = 0;
    index_t dest_hi = 1;
    PackageKind kind = PackageKind::Input;

    index_t fanout() const { return dest_hi - dest_lo; }
};

/** Checkpoint serialization of packages queued in a Fifo<DataPackage>. */
template <>
struct FifoElementIo<DataPackage> {
    static void
    save(ArchiveWriter &ar, const DataPackage &p)
    {
        ar.putFloat(p.value);
        ar.putI64(p.dest_lo);
        ar.putI64(p.dest_hi);
        ar.putU32(static_cast<std::uint32_t>(p.kind));
    }

    static DataPackage
    load(ArchiveReader &ar)
    {
        DataPackage p;
        p.value = ar.getFloat();
        p.dest_lo = ar.getI64();
        p.dest_hi = ar.getI64();
        p.kind = static_cast<PackageKind>(ar.getU32());
        return p;
    }
};

/** A clocked hardware component. */
class Unit : public Checkpointable
{
  public:
    /**
     * nextActiveCycle() sentinel: the unit has no queued work, no
     * in-flight pipeline contents and no pending injections, so the
     * wakeup scheduler may skip it for any number of cycles.
     */
    static constexpr cycle_t kIdle = ~cycle_t{0};

    ~Unit() override = default;

    /** Advance the component by one clock edge. */
    virtual void cycle() = 0;

    /** Return the component to its post-configuration state. */
    virtual void reset() = 0;

    /** Component instance name used in stats. */
    virtual std::string name() const = 0;

    /**
     * Relative cycle (0 = the next clock edge) at which the unit next
     * has work that requires an exact cycle() tick, or kIdle when the
     * unit is drained: nothing queued, nothing in flight, nothing
     * pending injection. The event engine only skips a span when every
     * scheduled unit reports kIdle — a unit reporting 0 pins the
     * scheduler to exact per-cycle stepping.
     */
    virtual cycle_t nextActiveCycle() const { return kIdle; }

    /**
     * Dump the component's cycle-level state into a watchdog deadlock
     * snapshot. Concrete units override this to expose issue counters,
     * occupancies and in-flight ranges; the default names the unit.
     */
    virtual void
    dumpState(std::ostream &os) const
    {
        os << name() << ": (no state exposed)\n";
    }

    /**
     * Checkpointing defaults: a unit whose only persistent state lives
     * in the StatsRegistry (checkpointed separately) has nothing of
     * its own to serialize. Units with per-cycle issue state or other
     * members override both.
     */
    void saveState(ArchiveWriter &) const override {}
    void loadState(ArchiveReader &) override {}
};

/**
 * Abstract distribution network: moves packages from the Global Buffer
 * read ports to the multiplier switches.
 *
 * Per cycle, at most `bandwidth()` packages can be injected; concrete
 * topologies add their own structural constraints (e.g. a point-to-point
 * network rejects multicasts, a tree rejects overlapping leaf ranges in
 * the same cycle). Successful injections are delivered within the cycle
 * (single-cycle delivery as in the MAERI and SIGMA fabrics).
 */
/**
 * Concrete distribution-network topology tag. The event engine's inner
 * delivery loop switches on this once per delivery and then runs a
 * devirtualized per-cycle loop against the concrete class — one
 * indirect-call-free path per topology instead of three virtual calls
 * per simulated cycle.
 */
enum class DnKind {
    Tree,         //!< TreeDistributionNetwork
    Benes,        //!< BenesDistributionNetwork
    PointToPoint, //!< PointToPointNetwork
};

class DistributionNetwork : public Unit
{
  public:
    DistributionNetwork(DnKind kind, index_t ms_size, index_t bandwidth)
        : kind_(kind), ms_size_(ms_size), bandwidth_(bandwidth) {}

    /** Concrete topology tag for devirtualized dispatch. */
    DnKind kind() const { return kind_; }

    /**
     * Attempt to inject a package this cycle.
     * @return false when the per-cycle bandwidth is exhausted or the
     *         topology has a structural conflict; the caller retries the
     *         same package next cycle (a stall).
     */
    virtual bool inject(const DataPackage &pkg) = 0;

    /**
     * Inject up to `n` same-kind packages of identical fanout with
     * controller-guaranteed disjoint destinations (the common case for
     * a memory controller streaming a fetch list).
     * @return how many packages were accepted this cycle.
     */
    virtual index_t injectBulk(index_t n, index_t fanout,
                               PackageKind kind) = 0;

    /**
     * Fast-forward `n_cycles` steady-state cycles in which a total of
     * `n_packages` same-kind, same-fanout packages were accepted — the
     * closed-form equivalent of n_cycles iterations of cycle() +
     * injectBulk() where every offered package is accepted (so no
     * stalls occur). Activity counters advance exactly as the
     * per-cycle path would; the per-cycle issue state is untouched
     * (the caller finishes the region with one exact cycle).
     */
    virtual void bulkAdvance(cycle_t n_cycles, index_t n_packages,
                             index_t fanout, PackageKind kind) = 0;

    index_t msSize() const { return ms_size_; }
    index_t bandwidth() const { return bandwidth_; }

    /**
     * Account the injection-queue occupancy of streaming `count`
     * elements at `grant` accepted per cycle: the pending backlog
     * summed over the delivery's cycles (count + (count - grant) +
     * ...), in closed form. Accounted once per delivery — not per
     * cycle — so exact and fast-forwarded runs see identical counter
     * evolution; under fault injection this stays the no-drop
     * integral, and the stretched cycles show up in dn.stalls.
     */
    void
    accountBacklog(index_t count, index_t grant)
    {
        if (inject_queue_occ_ == nullptr || count <= 0 || grant <= 0)
            return;
        const count_t n =
            static_cast<count_t>((count + grant - 1) / grant);
        inject_queue_occ_->value +=
            n * static_cast<count_t>(count) -
            static_cast<count_t>(grant) * (n * (n - 1) / 2);
    }

  protected:
    DnKind kind_;
    index_t ms_size_;
    index_t bandwidth_;
    //! dn.inject_queue_occ occupancy integral, registered by the
    //! concrete topologies.
    StatCounter *inject_queue_occ_ = nullptr;
};

/**
 * Abstract reduction network: collapses the per-multiplier products of a
 * cluster (virtual neuron) into one value.
 *
 * The engine asks for the latency and adder activity of reducing one
 * cluster; concrete topologies differ in adder arity, pipeline depth and
 * whether arbitrary cluster boundaries are supported.
 */
class ReductionNetwork : public Unit
{
  public:
    explicit ReductionNetwork(index_t ms_size) : ms_size_(ms_size) {}

    /**
     * Account one cluster reduction of `cluster_size` products and
     * return the number of pipeline stages it occupies.
     */
    virtual index_t reduceCluster(index_t cluster_size) = 0;

    /**
     * Account `clusters` reductions of identical `cluster_size` — the
     * closed-form equivalent of calling reduceCluster(cluster_size)
     * `clusters` times. Topologies with cheap per-cluster arithmetic
     * override this with O(1) counter math; the default loops.
     */
    virtual void
    bulkReduce(index_t clusters, index_t cluster_size)
    {
        for (index_t i = 0; i < clusters; ++i)
            reduceCluster(cluster_size);
    }

    /** Pipeline depth for a cluster of the given size. */
    virtual index_t latency(index_t cluster_size) const = 0;

    /** Whether the topology supports arbitrary per-cluster boundaries. */
    virtual bool supportsVariableClusters() const = 0;

    /**
     * Whether psums can accumulate at the collection point (ART+ACC,
     * FAN, LRN). When false (plain ART+DIST) folded psums round-trip
     * through the Global Buffer and re-enter via the MN forwarders.
     */
    virtual bool supportsAccumulation() const = 0;

    /** Account `n` accumulations at the collection point. */
    virtual void accumulate(index_t n) = 0;

    index_t msSize() const { return ms_size_; }

  protected:
    index_t ms_size_;
};

} // namespace stonne

#endif // STONNE_NETWORK_UNIT_HPP
