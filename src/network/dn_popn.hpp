/**
 * @file
 * Point-to-Point Network (PoPN) distribution fabric — systolic-style.
 *
 * Dedicated unicast links from the Global Buffer edge into the array, the
 * building block of TPU-like systolic interconnects. No multicast: a
 * package whose destination range spans more than one switch is rejected
 * as a structural violation (the dense controller replicates the data
 * instead, which is why systolic arrays need full edge bandwidth).
 */

#ifndef STONNE_NETWORK_DN_POPN_HPP
#define STONNE_NETWORK_DN_POPN_HPP

#include "network/unit.hpp"

namespace stonne {

/** Unicast-only point-to-point injection links. */
class PointToPointNetwork final : public DistributionNetwork
{
  public:
    PointToPointNetwork(index_t ms_size, index_t bandwidth,
                        StatsRegistry &stats);

    bool inject(const DataPackage &pkg) override;
    index_t injectBulk(index_t n, index_t fanout,
                       PackageKind kind) override;
    void bulkAdvance(cycle_t n_cycles, index_t n_packages, index_t fanout,
                     PackageKind kind) override;

    void cycle() override;
    void reset() override;
    std::string name() const override { return "dn_popn"; }

    /** Issued packages occupy the injection links until the next edge. */
    cycle_t
    nextActiveCycle() const override
    {
        return issued_this_cycle_ > 0 ? 0 : kIdle;
    }

    /** Issue/activity state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const override;

    /** Serialize the per-cycle issue count. */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

    count_t packagesDelivered() const { return packages_->value; }
    count_t stalls() const { return stalls_->value; }

  private:
    index_t issued_this_cycle_ = 0;
    StatCounter *packages_;
    StatCounter *link_hops_;
    StatCounter *stalls_;
};

} // namespace stonne

#endif // STONNE_NETWORK_DN_POPN_HPP
