/**
 * @file
 * Benes Network (BN) distribution fabric — SIGMA-style.
 *
 * An N-input N-output non-blocking topology with 2*log2(N) + 1 levels of
 * N/2 tiny 2x2 switches. Because the network is non-blocking, any set of
 * at most `bandwidth` packages with disjoint destinations can be routed
 * in a single cycle — unlike the tree there are no structural range
 * conflicts, only the bandwidth limit. The price is paid in energy and
 * area: every traversal crosses all 2*log2(N) + 1 switch levels.
 */

#ifndef STONNE_NETWORK_DN_BENES_HPP
#define STONNE_NETWORK_DN_BENES_HPP

#include <vector>

#include "network/unit.hpp"

namespace stonne {

/** SIGMA-style non-blocking Benes distribution network. */
class BenesDistributionNetwork final : public DistributionNetwork
{
  public:
    BenesDistributionNetwork(index_t ms_size, index_t bandwidth,
                             StatsRegistry &stats);

    bool inject(const DataPackage &pkg) override;
    index_t injectBulk(index_t n, index_t fanout,
                       PackageKind kind) override;
    void bulkAdvance(cycle_t n_cycles, index_t n_packages, index_t fanout,
                     PackageKind kind) override;

    void cycle() override;
    void reset() override;
    std::string name() const override { return "dn_benes"; }

    /** Issued packages occupy switch levels until the next edge. */
    cycle_t
    nextActiveCycle() const override
    {
        return issued_this_cycle_ > 0 ? 0 : kIdle;
    }

    /** Issue/activity state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const override;

    /** Serialize the per-cycle issue count. */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

    /** Switch levels: 2*log2(N) + 1. */
    index_t levels() const { return levels_; }

    /** Total 2x2 switches in the fabric (area model input). */
    index_t switchCount() const { return levels_ * (ms_size_ / 2); }

    count_t packagesDelivered() const { return packages_->value; }
    count_t stalls() const { return stalls_->value; }

  private:
    index_t levels_;
    index_t issued_this_cycle_ = 0;
    StatCounter *packages_;
    StatCounter *switch_hops_;
    StatCounter *link_hops_;
    StatCounter *stalls_;
};

} // namespace stonne

#endif // STONNE_NETWORK_DN_BENES_HPP
