/**
 * @file
 * Output-stationary systolic array — the TPU-like rigid substrate.
 *
 * A fully structural cycle-by-cycle model: operands enter skewed along
 * the west (matrix A rows) and north (matrix B columns) edges through the
 * point-to-point distribution links, hop between neighbouring PEs on the
 * linear multiplier network's forwarding links, and accumulate in place
 * (output-stationary dataflow, like ShiDianNao and the OS-configured TPU
 * the paper validates against). Results drain through the linear
 * reduction chain.
 *
 * Per tile of (m_t x n_t) outputs the compute wavefront takes
 * K + m_t + n_t - 2 cycles; a constant 4-cycle injection/drain register
 * overhead per tile reproduces the RTL behaviour of the SCALE-Sim
 * validation array (Table V: per-tile cost K + ar + ac + 2).
 */

#ifndef STONNE_NETWORK_SYSTOLIC_HPP
#define STONNE_NETWORK_SYSTOLIC_HPP

#include "mem/global_buffer.hpp"
#include "network/dn_popn.hpp"
#include "network/mn_array.hpp"
#include "network/rn_linear.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

/** Result of one systolic GEMM execution. */
struct SystolicResult {
    cycle_t cycles = 0;
    count_t macs = 0;
    index_t tiles = 0;
};

/** Output-stationary systolic array of rows x cols PEs. */
class SystolicArray
{
  public:
    /**
     * @param rows PE rows (A-row direction)
     * @param cols PE columns (B-column direction)
     * @param dn point-to-point injection links (stats)
     * @param mn multiplier array (stats)
     * @param rn linear reduction chain (stats)
     * @param gb global buffer (bandwidth + access accounting)
     */
    SystolicArray(index_t rows, index_t cols, PointToPointNetwork &dn,
                  MultiplierArray &mn, LinearReductionNetwork &rn,
                  GlobalBuffer &gb);

    /**
     * Run C = A * B cycle by cycle.
     * @param a (M x K); @param b (K x N); @param c out, (M x N)
     */
    SystolicResult run(const Tensor &a, const Tensor &b, Tensor &c);

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }

    /** Register-stage overhead added per tile (injection + drain). */
    static constexpr index_t kTileOverhead = 4;

  private:
    cycle_t runTile(const Tensor &a, const Tensor &b, Tensor &c,
                    index_t m0, index_t n0, index_t mt, index_t nt,
                    count_t &macs);

    index_t rows_;
    index_t cols_;
    PointToPointNetwork &dn_;
    MultiplierArray &mn_;
    LinearReductionNetwork &rn_;
    GlobalBuffer &gb_;
};

} // namespace stonne

#endif // STONNE_NETWORK_SYSTOLIC_HPP
