#include "network/rn_tree.hpp"

#include "common/logging.hpp"

namespace stonne {

namespace {

index_t
log2Ceil(index_t v)
{
    index_t l = 0;
    index_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

} // namespace

ArtReductionNetwork::ArtReductionNetwork(index_t ms_size,
                                         bool with_accumulator,
                                         index_t accumulator_size,
                                         StatsRegistry &stats)
    : ReductionNetwork(ms_size),
      with_accumulator_(with_accumulator),
      accumulator_size_(accumulator_size),
      adder_ops_(&stats.counter("rn.adder_ops",
                                StatGroup::ReductionNetwork)),
      accumulator_ops_(&stats.counter("rn.accumulator_ops",
                                      StatGroup::ReductionNetwork)),
      horizontal_hops_(&stats.counter("rn.horizontal_hops",
                                      StatGroup::ReductionNetwork)),
      pipeline_occ_(&stats.counter("rn.pipeline_occ",
                                   StatGroup::ReductionNetwork,
                                   StatKind::Occupancy))
{
    fatalIf(ms_size <= 0 || (ms_size & (ms_size - 1)) != 0,
            "ART needs a power-of-two number of leaves");
    fatalIf(with_accumulator && accumulator_size <= 0,
            "ART+ACC needs a positive accumulator size");
}

index_t
ArtReductionNetwork::reduceCluster(index_t cluster_size)
{
    panicIf(cluster_size <= 0 || cluster_size > ms_size_,
            "ART cluster size ", cluster_size, " out of range");
    if (cluster_size == 1)
        return 0;
    // A cluster of n products needs n - 1 two-input additions; the 3:1
    // nodes fuse pairs of them, so ceil((n - 1) / 2) adder firings.
    const index_t firings = (cluster_size - 1 + 1) / 2;
    adder_ops_->value += static_cast<count_t>(firings);
    // Clusters not aligned to a physical subtree route one operand over a
    // horizontal (augmented) link per level on average.
    if ((cluster_size & (cluster_size - 1)) != 0)
        ++horizontal_hops_->value;
    pipeline_occ_->value += static_cast<count_t>(latency(cluster_size));
    return latency(cluster_size);
}

void
ArtReductionNetwork::bulkReduce(index_t clusters, index_t cluster_size)
{
    panicIf(clusters < 0, "negative ART cluster count ", clusters);
    panicIf(cluster_size <= 0 || cluster_size > ms_size_,
            "ART cluster size ", cluster_size, " out of range");
    if (clusters == 0 || cluster_size == 1)
        return;
    const index_t firings = (cluster_size - 1 + 1) / 2;
    adder_ops_->value += static_cast<count_t>(clusters * firings);
    if ((cluster_size & (cluster_size - 1)) != 0)
        horizontal_hops_->value += static_cast<count_t>(clusters);
    pipeline_occ_->value +=
        static_cast<count_t>(clusters * latency(cluster_size));
}

index_t
ArtReductionNetwork::latency(index_t cluster_size) const
{
    panicIf(cluster_size <= 0, "latency of an empty cluster");
    return log2Ceil(cluster_size);
}

void
ArtReductionNetwork::accumulate(index_t n)
{
    panicIf(!with_accumulator_,
            "accumulate on an ART without accumulation buffer");
    panicIf(n < 0 || n > accumulator_size_,
            "accumulator burst ", n, " exceeds buffer size ",
            accumulator_size_);
    accumulator_ops_->value += static_cast<count_t>(n);
}

void
ArtReductionNetwork::cycle()
{
}

void
ArtReductionNetwork::reset()
{
}

void
ArtReductionNetwork::dumpState(std::ostream &os) const
{
    os << name() << ": " << adderCount() << " adders over "
       << ms_size_ << " leaves, accumulator "
       << (with_accumulator_ ? "present" : "absent") << " (size "
       << accumulator_size_ << "), adder ops " << adder_ops_->value
       << ", accumulator ops " << accumulator_ops_->value << "\n";
}

} // namespace stonne
