/**
 * @file
 * Augmented Reduction Tree (ART) — MAERI-style reduction network.
 *
 * A binary adder tree augmented with 3:1 adder nodes and horizontal links
 * between same-level nodes that do not share a parent, enabling multiple
 * non-blocking *virtual* reduction trees (one per cluster / virtual
 * neuron) over a single physical substrate. Two collection variants from
 * the paper:
 *  - ART+DIST: psums from previous folds re-enter through the MN.
 *  - ART+ACC: an accumulation buffer at the collection point accumulates
 *    psums across folds, pipelining consecutive iterations.
 */

#ifndef STONNE_NETWORK_RN_TREE_HPP
#define STONNE_NETWORK_RN_TREE_HPP

#include "network/unit.hpp"

namespace stonne {

/** ART / ART+ACC reduction network. */
class ArtReductionNetwork final : public ReductionNetwork
{
  public:
    /**
     * @param ms_size leaves (products) the physical tree spans
     * @param with_accumulator true for the ART+ACC variant
     * @param accumulator_size entries in the accumulation buffer
     * @param stats registry for adder activity counters
     */
    ArtReductionNetwork(index_t ms_size, bool with_accumulator,
                        index_t accumulator_size, StatsRegistry &stats);

    index_t reduceCluster(index_t cluster_size) override;
    void bulkReduce(index_t clusters, index_t cluster_size) override;
    index_t latency(index_t cluster_size) const override;
    bool supportsVariableClusters() const override { return true; }
    bool supportsAccumulation() const override { return with_accumulator_; }

    /** Account accumulations into the ACC buffer (folding). */
    void accumulate(index_t n) override;

    bool hasAccumulator() const { return with_accumulator_; }
    index_t accumulatorSize() const { return accumulator_size_; }

    /** Physical 3:1 adder nodes in the tree (area model input). */
    index_t adderCount() const { return ms_size_ - 1; }

    count_t adderOps() const { return adder_ops_->value; }
    count_t accumulatorOps() const { return accumulator_ops_->value; }

    void cycle() override;
    void reset() override;
    std::string name() const override { return "rn_art"; }

    /** Issue/activity state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const override;

  private:
    bool with_accumulator_;
    index_t accumulator_size_;
    StatCounter *adder_ops_;
    StatCounter *accumulator_ops_;
    StatCounter *horizontal_hops_;
    StatCounter *pipeline_occ_;
};

} // namespace stonne

#endif // STONNE_NETWORK_RN_TREE_HPP
