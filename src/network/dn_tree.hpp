/**
 * @file
 * Tree Network (TN) distribution fabric — MAERI-style.
 *
 * A binary distribution tree over the multiplier switches, replicated once
 * per Global Buffer read port (so up to `bandwidth` packages issue per
 * cycle), providing single-cycle unicast / multicast / broadcast delivery
 * to contiguous leaf ranges. Within one cycle each leaf can accept at most
 * one package; a package whose range overlaps an already-issued one must
 * wait — these serialization stalls are the conflicts Figure 1b shows the
 * analytical model missing.
 */

#ifndef STONNE_NETWORK_DN_TREE_HPP
#define STONNE_NETWORK_DN_TREE_HPP

#include <vector>

#include "network/unit.hpp"

namespace stonne {

/** MAERI-style binary distribution tree. */
class TreeDistributionNetwork final : public DistributionNetwork
{
  public:
    /**
     * @param ms_size leaves (must be a power of two)
     * @param bandwidth packages per cycle (replicated trees / fat root)
     * @param stats registry for traversal counters
     */
    TreeDistributionNetwork(index_t ms_size, index_t bandwidth,
                            StatsRegistry &stats);

    bool inject(const DataPackage &pkg) override;
    index_t injectBulk(index_t n, index_t fanout,
                       PackageKind kind) override;
    void bulkAdvance(cycle_t n_cycles, index_t n_packages, index_t fanout,
                     PackageKind kind) override;

    void cycle() override;
    void reset() override;
    std::string name() const override { return "dn_tree"; }

    /** Issued packages still occupy subtree links until the next edge. */
    cycle_t
    nextActiveCycle() const override
    {
        return issued_this_cycle_ > 0 ? 0 : kIdle;
    }

    /** Issue/activity state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const override;

    /** Serialize the per-cycle issue state (count + issued ranges). */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

    /** Tree depth: log2(ms_size) switch levels. */
    index_t levels() const { return levels_; }

    /** Switch hops a multicast to a leaf range of `fanout` occupies. */
    index_t traversalSwitches(index_t fanout) const;

    count_t packagesDelivered() const { return packages_->value; }
    count_t stalls() const { return stalls_->value; }

  private:
    index_t levels_;
    index_t issued_this_cycle_ = 0;
    // In-flight leaf ranges of the current cycle as a struct-of-arrays
    // pair: the overlap scan in inject() walks a dense index_t array
    // instead of striding over pairs.
    std::vector<index_t> range_lo_;
    std::vector<index_t> range_hi_;
    StatCounter *packages_;
    StatCounter *switch_hops_;
    StatCounter *link_hops_;
    StatCounter *stalls_;
};

} // namespace stonne

#endif // STONNE_NETWORK_DN_TREE_HPP
