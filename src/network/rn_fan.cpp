#include "network/rn_fan.hpp"

#include "common/logging.hpp"

namespace stonne {

namespace {

index_t
log2Ceil(index_t v)
{
    index_t l = 0;
    index_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

} // namespace

FanReductionNetwork::FanReductionNetwork(index_t ms_size,
                                         StatsRegistry &stats)
    : ReductionNetwork(ms_size),
      adder_ops_(&stats.counter("rn.adder_ops",
                                StatGroup::ReductionNetwork)),
      accumulator_ops_(&stats.counter("rn.accumulator_ops",
                                      StatGroup::ReductionNetwork)),
      forward_hops_(&stats.counter("rn.forward_hops",
                                   StatGroup::ReductionNetwork)),
      pipeline_occ_(&stats.counter("rn.pipeline_occ",
                                   StatGroup::ReductionNetwork,
                                   StatKind::Occupancy))
{
    fatalIf(ms_size <= 0 || (ms_size & (ms_size - 1)) != 0,
            "FAN needs a power-of-two number of leaves");
}

index_t
FanReductionNetwork::reduceCluster(index_t cluster_size)
{
    panicIf(cluster_size <= 0 || cluster_size > ms_size_,
            "FAN cluster size ", cluster_size, " out of range");
    if (cluster_size == 1)
        return 0;
    adder_ops_->value += static_cast<count_t>(cluster_size - 1);
    // Clusters not aligned to a subtree boundary route operands through
    // forwarding links instead of 3:1 fusion.
    if ((cluster_size & (cluster_size - 1)) != 0)
        ++forward_hops_->value;
    pipeline_occ_->value += static_cast<count_t>(latency(cluster_size));
    return latency(cluster_size);
}

void
FanReductionNetwork::bulkReduce(index_t clusters, index_t cluster_size)
{
    panicIf(clusters < 0, "negative FAN cluster count ", clusters);
    panicIf(cluster_size <= 0 || cluster_size > ms_size_,
            "FAN cluster size ", cluster_size, " out of range");
    if (clusters == 0 || cluster_size == 1)
        return;
    adder_ops_->value += static_cast<count_t>(clusters * (cluster_size - 1));
    if ((cluster_size & (cluster_size - 1)) != 0)
        forward_hops_->value += static_cast<count_t>(clusters);
    pipeline_occ_->value +=
        static_cast<count_t>(clusters * latency(cluster_size));
}

index_t
FanReductionNetwork::latency(index_t cluster_size) const
{
    panicIf(cluster_size <= 0, "latency of an empty cluster");
    return log2Ceil(cluster_size);
}

void
FanReductionNetwork::accumulate(index_t n)
{
    panicIf(n < 0, "invalid accumulation count");
    accumulator_ops_->value += static_cast<count_t>(n);
}

void
FanReductionNetwork::cycle()
{
}

void
FanReductionNetwork::reset()
{
}

void
FanReductionNetwork::dumpState(std::ostream &os) const
{
    os << name() << ": " << adderCount() << " adders over " << ms_size_
       << " leaves, adder ops " << adder_ops_->value
       << ", accumulator ops " << accumulator_ops_->value << "\n";
}

} // namespace stonne
