/**
 * @file
 * Forwarding Adder Network (FAN) — SIGMA-style reduction network.
 *
 * SIGMA showed the ART's 3:1 adders are area/power inefficient and
 * replaced them with plain 2:1 adders plus forwarding links, keeping the
 * ability to form any number of dynamic-size clusters. Functionally
 * equivalent to ART for the engine; differs in adder activity accounting
 * (n - 1 two-input firings per cluster) and in the energy/area tables.
 */

#ifndef STONNE_NETWORK_RN_FAN_HPP
#define STONNE_NETWORK_RN_FAN_HPP

#include "network/unit.hpp"

namespace stonne {

/** SIGMA-style forwarding adder network with 2:1 adders. */
class FanReductionNetwork final : public ReductionNetwork
{
  public:
    FanReductionNetwork(index_t ms_size, StatsRegistry &stats);

    index_t reduceCluster(index_t cluster_size) override;
    void bulkReduce(index_t clusters, index_t cluster_size) override;
    index_t latency(index_t cluster_size) const override;
    bool supportsVariableClusters() const override { return true; }
    bool supportsAccumulation() const override { return true; }

    /** Account accumulations at the collection point. */
    void accumulate(index_t n) override;

    /** Physical 2:1 adder nodes (area model input). */
    index_t adderCount() const { return ms_size_ - 1; }

    count_t adderOps() const { return adder_ops_->value; }

    void cycle() override;
    void reset() override;
    std::string name() const override { return "rn_fan"; }

    /** Issue/activity state for watchdog deadlock snapshots. */
    void dumpState(std::ostream &os) const override;

  private:
    StatCounter *adder_ops_;
    StatCounter *accumulator_ops_;
    StatCounter *forward_hops_;
    StatCounter *pipeline_occ_;
};

} // namespace stonne

#endif // STONNE_NETWORK_RN_FAN_HPP
