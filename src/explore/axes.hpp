/**
 * @file
 * Axis grammar of the hardware co-search (`explore_axes` config key).
 *
 * An axes spec is a comma-separated list of structural axes, each a
 * name with an optional explicit power-of-two range:
 *
 *   ms_size,dn_bandwidth=32:128,fabric
 *
 * Known axes: ms_size, dn_bandwidth, rn_bandwidth, accumulator_size
 * (integer axes, range allowed) and fabric (dense vs. SIGMA-style
 * sparse substrate, no range). Kept in its own tiny header so the
 * strict config parser can validate the key at its defining file:line
 * without pulling in the whole exploration subsystem.
 */

#ifndef STONNE_EXPLORE_AXES_HPP
#define STONNE_EXPLORE_AXES_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace stonne::explore {

/** One parsed axis of an `explore_axes` spec. */
struct AxisSpec {
    std::string name;
    bool has_range = false;
    index_t lo = 0; //!< inclusive power-of-two lower bound
    index_t hi = 0; //!< inclusive power-of-two upper bound
};

/**
 * Parse and validate an axes spec. Throws FatalError on an empty
 * list, an unknown or duplicate axis name, a range on `fabric`, or a
 * malformed range (non-integer bounds, bounds that are not powers of
 * two, lo > hi). Diagnostics are prefixed `origin:lineno:` when
 * lineno > 0 (the config parser's contract), else `origin:`.
 */
std::vector<AxisSpec> parseAxesSpec(const std::string &spec,
                                    const std::string &origin = "<axes>",
                                    int lineno = 0);

} // namespace stonne::explore

#endif // STONNE_EXPLORE_AXES_HPP
