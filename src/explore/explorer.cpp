#include "explore/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>

#include "analytical/maeri_model.hpp"
#include "analytical/scalesim_model.hpp"
#include "analytical/sigma_model.hpp"
#include "common/logging.hpp"
#include "common/sweep_pool.hpp"
#include "controller/mapper.hpp"
#include "dse/tile_space.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "engine/workload.hpp"

namespace stonne::explore {

namespace {

/** Data-policy part of the cache key (same shape as the tuner's, so
 *  explorer and tuner evaluations of the same point share entries). */
std::string
policyText(const ExploreOptions &o)
{
    std::ostringstream os;
    os << "seed=" << o.seed << " sparsity=" << o.sparsity;
    return os.str();
}

/** Variant as actually simulated: side-effect knobs silenced so the
 *  sweep's worker threads never race on shared trace/checkpoint files
 *  (structurally identical, so cache keys are unaffected). */
HardwareConfig
evalConfig(HardwareConfig cfg)
{
    cfg.trace = false;
    cfg.checkpoint = false;
    cfg.autotune = false;
    cfg.explore = false;
    return cfg;
}

AreaTable
areaTableFor(const HardwareConfig &cfg)
{
    return cfg.area_table_path.empty()
               ? AreaTable::forDataType(cfg.data_type)
               : AreaTable::parseFile(cfg.area_table_path);
}

EnergyTable
energyTableFor(const HardwareConfig &cfg)
{
    return cfg.energy_table_path.empty()
               ? EnergyTable::forDataType(cfg.data_type)
               : EnergyTable::parseFile(cfg.energy_table_path);
}

/** One variant with its chosen mapping and analytical objectives. */
struct Candidate {
    DesignPoint point;
    LayerSpec layer;     //!< layer as executed (sparse GEMM on sparse)
    Tile tile;
    bool has_tile = false;
    cycle_t analytical_cycles = 0;
    double analytical_energy_uj = 0.0;
    double area_um2 = 0.0;
    std::size_t tiles_ranked = 1;
};

/**
 * Closed-form energy estimate matching the cycle-level model's cost
 * structure (EnergyTable actions x first-order activity counts). Only
 * the *relative* ordering across variants matters: this fidelity
 * decides which candidates earn a cycle-level simulation, never the
 * reported numbers.
 */
double
analyticalEnergyUj(const HardwareConfig &cfg, const LayerSpec &layer,
                   double macs, cycle_t cycles, double area_um2,
                   const EnergyTable &t)
{
    const GemmDims g = layer.gemmView();
    const double m = static_cast<double>(g.m);
    const double n = static_cast<double>(g.n);
    const double k = static_cast<double>(g.k);
    // Each MAC is one multiply, ~log2(ms) DN switch hops for its
    // operand delivery, and one RN adder visit on its psum's way down.
    const double hops =
        std::max(1.0, std::log2(static_cast<double>(cfg.ms_size)));
    double adder_pj = t.accumulator_pj;
    if (cfg.rn_type == RnType::Art || cfg.rn_type == RnType::ArtAcc)
        adder_pj = t.adder3_pj;
    else if (cfg.rn_type == RnType::Fan)
        adder_pj = t.adder2_pj;
    const double mult = macs * t.mult_pj;
    const double dn = macs * hops * t.switch_hop_pj;
    const double rn = macs * adder_pj;
    const double gb = 2.0 * macs * t.gb_read_pj + m * n * t.gb_write_pj;
    const double dram = (m * k + k * n + m * n) *
                        static_cast<double>(bytesPerElement(cfg.data_type)) *
                        t.dram_byte_pj;
    const double leak = static_cast<double>(cycles) * area_um2 *
                        t.leak_pj_um2_cycle;
    return (mult + dn + rn + gb + dram + leak) / 1.0e6;
}

/** Analytical cycles + best mapping for one variant. */
void
rankVariant(Candidate &c, const LayerSpec &layer, double sparsity)
{
    const HardwareConfig &cfg = c.point.cfg;
    if (cfg.controller_type == ControllerType::Sparse) {
        // The sparse fabric has no tile space; its mapping dimension
        // is the controller's dynamic cluster sizing.
        const GemmDims g = layer.gemmView();
        c.layer = LayerSpec::sparseGemm(layer.name, g.m, g.n, g.k);
        const index_t nnz = std::max<index_t>(
            1, static_cast<index_t>(std::llround(
                   (1.0 - sparsity) * static_cast<double>(g.m) *
                   static_cast<double>(g.k))));
        c.analytical_cycles = analytical::sigmaCycles(g.m, g.n, g.k, nnz,
                                                      cfg);
        return;
    }
    c.layer = layer;
    c.has_tile = true;
    if (cfg.dn_type == DnType::PointToPoint) {
        // Systolic injection: cycles are tile-independent; keep the
        // greedy mapping for execution.
        const index_t side = static_cast<index_t>(
            std::llround(std::sqrt(static_cast<double>(cfg.ms_size))));
        c.tile = Mapper(cfg.ms_size).generateTile(layer);
        c.analytical_cycles = analytical::scaleSimOsCycles(layer, side,
                                                           side);
        return;
    }
    const std::vector<Tile> tiles = dse::TileSpace::enumerate(layer, cfg);
    c.tiles_ranked = tiles.size();
    cycle_t best = 0;
    std::string best_canonical;
    for (const Tile &t : tiles) {
        const cycle_t cyc = analytical::maeriCycles(layer, t, cfg);
        const std::string canon = t.canonical();
        if (best_canonical.empty() || cyc < best ||
            (cyc == best && canon < best_canonical)) {
            best = cyc;
            best_canonical = canon;
            c.tile = t;
        }
    }
    c.analytical_cycles = best;
}

} // namespace

JsonValue
ExploreReport::json() const
{
    JsonValue v = JsonValue::makeObject();
    v.set("variants", static_cast<std::uint64_t>(variants));
    v.set("space_size", static_cast<std::uint64_t>(space_size));
    v.set("candidates", static_cast<std::uint64_t>(points.size()));
    v.set("cache_hits", static_cast<std::uint64_t>(cache_hits));
    v.set("simulations", static_cast<std::uint64_t>(simulations_run));
    v.set("frontier_size", static_cast<std::uint64_t>(frontier.size()));
    JsonValue front = JsonValue::makeArray();
    for (const std::size_t i : frontier) {
        const ExplorePoint &p = points[i];
        JsonValue e = JsonValue::makeObject();
        e.set("label", p.label);
        e.set("tile", p.tile.canonical());
        e.set("analytical_cycles",
              static_cast<std::uint64_t>(p.analytical_cycles));
        e.set("cycles", static_cast<std::uint64_t>(p.simulated_cycles));
        e.set("energy_uj", p.energy_uj);
        e.set("area_um2", p.area_um2);
        e.set("ms_utilization", p.ms_utilization);
        e.set("from_cache", p.from_cache);
        e.set("config_text", p.config_text);
        front.append(std::move(e));
    }
    v["frontier"] = std::move(front);
    JsonValue all = JsonValue::makeArray();
    for (const ExplorePoint &p : points) {
        JsonValue e = JsonValue::makeObject();
        e.set("label", p.label);
        e.set("tile", p.tile.canonical());
        e.set("cycles", static_cast<std::uint64_t>(p.simulated_cycles));
        e.set("energy_uj", p.energy_uj);
        e.set("area_um2", p.area_um2);
        e.set("on_frontier", p.on_frontier);
        e.set("from_cache", p.from_cache);
        all.append(std::move(e));
    }
    v["evaluated"] = std::move(all);
    return v;
}

Explorer::Explorer(const HardwareConfig &base, ExploreOptions opts)
    : base_(evalConfig(base)), opts_(std::move(opts)),
      own_cache_(std::make_unique<dse::ResultCache>(opts_.cache_file)),
      cache_(own_cache_.get())
{
    fatalIf(opts_.top_k <= 0, "Explorer: top_k must be positive, got ",
            opts_.top_k);
    base_.validate();
}

Explorer::Explorer(const HardwareConfig &base, ExploreOptions opts,
                   dse::ResultCache &shared_cache)
    : base_(evalConfig(base)), opts_(std::move(opts)),
      cache_(&shared_cache)
{
    fatalIf(opts_.top_k <= 0, "Explorer: top_k must be positive, got ",
            opts_.top_k);
    base_.validate();
}

ExploreReport
Explorer::exploreLayer(const LayerSpec &layer)
{
    fatalIf(layer.kind != LayerKind::Convolution &&
                layer.kind != LayerKind::Linear &&
                layer.kind != LayerKind::Gemm,
            "Explorer: layer '", layer.name, "' is a ",
            layerKindName(layer.kind),
            "; the co-search explores the dense layer kinds "
            "(Convolution, Linear, Gemm)");
    fatalIf(base_.controller_type != ControllerType::Dense,
            "Explorer: the base config must use the dense controller");

    const std::vector<DesignPoint> space =
        DesignSpace::enumerate(base_, opts_.axes);

    // Fidelity 1: analytical objectives for every (variant, best tile).
    std::vector<Candidate> cands(space.size());
    std::vector<Objectives> predicted(space.size());
    ExploreReport rep;
    rep.variants = space.size();
    for (std::size_t i = 0; i < space.size(); ++i) {
        Candidate &c = cands[i];
        c.point = space[i];
        rankVariant(c, layer, opts_.sparsity);
        rep.space_size += c.tiles_ranked;
        c.area_um2 = AreaModel(c.point.cfg, areaTableFor(c.point.cfg))
                         .compute()
                         .total();
        const double macs =
            c.point.cfg.controller_type == ControllerType::Sparse
                ? (1.0 - opts_.sparsity) *
                      static_cast<double>(c.layer.macs())
                : static_cast<double>(c.layer.macs());
        c.analytical_energy_uj = analyticalEnergyUj(
            c.point.cfg, c.layer, macs, c.analytical_cycles, c.area_um2,
            energyTableFor(c.point.cfg));
        predicted[i] = {static_cast<double>(c.analytical_cycles),
                        c.analytical_energy_uj, c.area_um2};
    }

    // Candidate set: the predicted Pareto frontier, plus the top-K per
    // objective as insurance against analytical mis-ranking.
    std::set<std::size_t> chosen;
    for (const std::size_t i : paretoFront(predicted))
        chosen.insert(i);
    const std::size_t k = std::min<std::size_t>(
        space.size(), static_cast<std::size_t>(opts_.top_k));
    const auto take_top = [&](auto objective) {
        std::vector<std::size_t> order(space.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return objective(predicted[a]) <
                                    objective(predicted[b]);
                         });
        for (std::size_t i = 0; i < k; ++i)
            chosen.insert(order[i]);
    };
    take_top([](const Objectives &o) { return o.cycles; });
    take_top([](const Objectives &o) { return o.energy_uj; });
    take_top([](const Objectives &o) { return o.area_um2; });

    // Fidelity 2: cycle-level simulation, cache first.
    const std::string policy = policyText(opts_);
    struct Slot {
        std::size_t cand;
        std::string key;
        ExplorePoint pt;
    };
    std::vector<Slot> slots;
    slots.reserve(chosen.size());
    for (const std::size_t i : chosen) {
        Slot s;
        s.cand = i;
        s.key = dse::ResultCache::keyText(cands[i].point.cfg, cands[i].layer,
                                          cands[i].tile, policy);
        s.pt.label = cands[i].point.label;
        s.pt.tile = cands[i].tile;
        s.pt.analytical_cycles = cands[i].analytical_cycles;
        s.pt.analytical_energy_uj = cands[i].analytical_energy_uj;
        s.pt.area_um2 = cands[i].area_um2;
        s.pt.config_text = cands[i].point.cfg.toConfigText();
        slots.push_back(std::move(s));
    }

    std::vector<std::size_t> jobs;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (const auto hit = cache_->lookup(slots[i].key)) {
            slots[i].pt.simulated_cycles = hit->cycles;
            slots[i].pt.energy_uj = hit->energy_uj;
            slots[i].pt.area_um2 = hit->area_um2;
            slots[i].pt.ms_utilization = hit->ms_utilization;
            slots[i].pt.from_cache = true;
        } else {
            jobs.push_back(i);
        }
    }

    if (!jobs.empty()) {
        // One operand bundle per executed layer form (dense layers
        // share operands across variants; sparse variants run the
        // GEMM view with pruned weights). Workers copy into their own
        // accelerator instances, so slots are written race-free.
        const LayerData dense_data =
            makeLayerData(layer, opts_.sparsity, opts_.seed);
        LayerData sparse_data;
        for (const std::size_t i : jobs)
            if (!cands[slots[i].cand].has_tile) {
                sparse_data = makeLayerData(cands[slots[i].cand].layer,
                                            opts_.sparsity, opts_.seed);
                break;
            }
        std::vector<std::function<void()>> work;
        work.reserve(jobs.size());
        for (const std::size_t i : jobs)
            work.push_back([this, &cands, &slots, &dense_data,
                            &sparse_data, i] {
                const Candidate &c = cands[slots[i].cand];
                Stonne st(evalConfig(c.point.cfg));
                const SimulationResult r =
                    c.has_tile
                        ? runLayer(st, c.layer, dense_data, c.tile)
                        : runLayer(st, c.layer, sparse_data);
                slots[i].pt.simulated_cycles = r.cycles;
                slots[i].pt.energy_uj = r.energy.total();
                slots[i].pt.area_um2 = r.area.total();
                slots[i].pt.ms_utilization = r.ms_utilization;
            });
        SweepRunner(opts_.threads).run(work);
        for (const std::size_t i : jobs)
            cache_->insert(slots[i].key,
                           dse::CachedOutcome{slots[i].pt.simulated_cycles,
                                              slots[i].pt.energy_uj,
                                              slots[i].pt.area_um2,
                                              slots[i].pt.ms_utilization});
        // A shared cache is persisted by its owner (the service saves
        // once at shutdown), not after every exploration.
        if (own_cache_)
            own_cache_->save();
    }

    rep.cache_hits = slots.size() - jobs.size();
    rep.simulations_run = jobs.size();
    total_simulations_ += jobs.size();

    // The exact frontier: dominance over the *simulated* objectives.
    std::vector<Objectives> exact(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i)
        exact[i] = {static_cast<double>(slots[i].pt.simulated_cycles),
                    slots[i].pt.energy_uj, slots[i].pt.area_um2};
    for (const std::size_t i : paretoFront(exact))
        slots[i].pt.on_frontier = true;

    rep.points.reserve(slots.size());
    for (Slot &s : slots)
        rep.points.push_back(std::move(s.pt));
    std::sort(rep.points.begin(), rep.points.end(),
              [](const ExplorePoint &a, const ExplorePoint &b) {
                  if (a.on_frontier != b.on_frontier)
                      return a.on_frontier;
                  if (a.simulated_cycles != b.simulated_cycles)
                      return a.simulated_cycles < b.simulated_cycles;
                  if (a.energy_uj != b.energy_uj)
                      return a.energy_uj < b.energy_uj;
                  if (a.area_um2 != b.area_um2)
                      return a.area_um2 < b.area_um2;
                  return a.label < b.label;
              });
    for (std::size_t i = 0; i < rep.points.size(); ++i)
        if (rep.points[i].on_frontier)
            rep.frontier.push_back(i);
    return rep;
}

} // namespace stonne::explore
