#include "explore/pareto.hpp"

#include <algorithm>

namespace stonne::explore {

bool
dominates(const Objectives &a, const Objectives &b)
{
    const bool no_worse = a.cycles <= b.cycles &&
                          a.energy_uj <= b.energy_uj &&
                          a.area_um2 <= b.area_um2;
    const bool better = a.cycles < b.cycles || a.energy_uj < b.energy_uj ||
                        a.area_um2 < b.area_um2;
    return no_worse && better;
}

std::vector<std::size_t>
paretoFront(const std::vector<Objectives> &points)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool keep = true;
        for (std::size_t j = 0; j < points.size() && keep; ++j) {
            if (j == i)
                continue;
            if (dominates(points[j], points[i]))
                keep = false;
            // Duplicate objective vectors: only the first occurrence
            // survives, so the frontier stays a set.
            if (j < i && points[j].cycles == points[i].cycles &&
                points[j].energy_uj == points[i].energy_uj &&
                points[j].area_um2 == points[i].area_um2)
                keep = false;
        }
        if (keep)
            front.push_back(i);
    }
    std::sort(front.begin(), front.end(),
              [&](std::size_t a, std::size_t b) {
                  const Objectives &pa = points[a];
                  const Objectives &pb = points[b];
                  if (pa.cycles != pb.cycles)
                      return pa.cycles < pb.cycles;
                  if (pa.energy_uj != pb.energy_uj)
                      return pa.energy_uj < pb.energy_uj;
                  if (pa.area_um2 != pb.area_um2)
                      return pa.area_um2 < pb.area_um2;
                  return a < b;
              });
    return front;
}

} // namespace stonne::explore
