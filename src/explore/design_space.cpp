#include "explore/design_space.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace stonne::explore {

namespace {

bool
isPow2(index_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

const char *const kAxisNames[] = {
    "ms_size", "dn_bandwidth", "rn_bandwidth", "accumulator_size", "fabric",
};

bool
knownAxis(const std::string &name)
{
    for (const char *n : kAxisNames)
        if (name == n)
            return true;
    return false;
}

/** "origin:lineno: " (file key) or "origin: " (programmatic config). */
std::string
where(const std::string &origin, int lineno)
{
    std::ostringstream os;
    os << origin;
    if (lineno > 0)
        os << ":" << lineno;
    os << ": ";
    return os.str();
}

index_t
parseBound(const std::string &text, const std::string &origin, int lineno,
           const std::string &token)
{
    fatalIf(text.empty() ||
                text.find_first_not_of("0123456789") != std::string::npos,
            where(origin, lineno), "explore_axes range bound '", text,
            "' in '", token, "' is not a positive integer");
    long long v = 0;
    for (char c : text) {
        v = v * 10 + (c - '0');
        fatalIf(v > (1ll << 30), where(origin, lineno),
                "explore_axes range bound '", text, "' in '", token,
                "' is out of range");
    }
    return static_cast<index_t>(v);
}

/** Power-of-two doubling sweep [lo, hi], both bounds included. */
std::vector<index_t>
pow2Range(index_t lo, index_t hi)
{
    std::vector<index_t> vals;
    for (index_t v = lo; v <= hi; v *= 2)
        vals.push_back(v);
    return vals;
}

} // namespace

std::vector<AxisSpec>
parseAxesSpec(const std::string &spec, const std::string &origin, int lineno)
{
    std::vector<AxisSpec> axes;
    fatalIf(trim(spec).empty(), where(origin, lineno),
            "explore_axes must name at least one axis");
    std::istringstream ss(spec);
    std::string token;
    while (std::getline(ss, token, ',')) {
        token = trim(token);
        fatalIf(token.empty(), where(origin, lineno),
                "explore_axes has an empty entry in '", spec, "'");
        AxisSpec axis;
        std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            axis.name = token;
        } else {
            axis.name = trim(token.substr(0, eq));
            std::string range = trim(token.substr(eq + 1));
            std::size_t colon = range.find(':');
            fatalIf(colon == std::string::npos, where(origin, lineno),
                    "explore_axes range '", token,
                    "' must have the form name=lo:hi");
            axis.has_range = true;
            axis.lo = parseBound(trim(range.substr(0, colon)), origin,
                                 lineno, token);
            axis.hi = parseBound(trim(range.substr(colon + 1)), origin,
                                 lineno, token);
            fatalIf(!isPow2(axis.lo) || !isPow2(axis.hi),
                    where(origin, lineno), "explore_axes range '", token,
                    "' bounds must be powers of two (the sweep doubles "
                    "from lo to hi)");
            fatalIf(axis.lo > axis.hi, where(origin, lineno),
                    "explore_axes range '", token, "' has lo > hi");
        }
        fatalIf(!knownAxis(axis.name), where(origin, lineno),
                "explore_axes names unknown axis '", axis.name,
                "' (known: ms_size, dn_bandwidth, rn_bandwidth, "
                "accumulator_size, fabric)");
        fatalIf(axis.name == "fabric" && axis.has_range,
                where(origin, lineno),
                "explore_axes axis 'fabric' enumerates {dense, sparse} "
                "and takes no range");
        for (const AxisSpec &prev : axes)
            fatalIf(prev.name == axis.name, where(origin, lineno),
                    "explore_axes lists axis '", axis.name, "' twice");
        axes.push_back(axis);
    }
    return axes;
}

std::vector<DesignPoint>
DesignSpace::enumerate(const HardwareConfig &base,
                       const std::string &axes_spec)
{
    const std::vector<AxisSpec> axes = parseAxesSpec(axes_spec);

    // Unlisted axes stay pinned at the base's value (single-element
    // sweep); listed axes without a range sweep around the base.
    std::vector<index_t> ms_vals = {base.ms_size};
    std::vector<index_t> dn_vals = {base.dn_bandwidth};
    std::vector<index_t> rn_vals = {base.rn_bandwidth};
    std::vector<index_t> acc_vals = {base.accumulator_size};
    bool sweep_fabric = false;
    for (const AxisSpec &axis : axes) {
        if (axis.name == "ms_size") {
            ms_vals = axis.has_range
                          ? pow2Range(axis.lo, axis.hi)
                          : pow2Range(std::max<index_t>(16, base.ms_size / 4),
                                      base.ms_size);
        } else if (axis.name == "dn_bandwidth") {
            dn_vals = axis.has_range
                          ? pow2Range(axis.lo, axis.hi)
                          : pow2Range(
                                std::max<index_t>(1, base.dn_bandwidth / 4),
                                base.dn_bandwidth);
        } else if (axis.name == "rn_bandwidth") {
            rn_vals = axis.has_range
                          ? pow2Range(axis.lo, axis.hi)
                          : pow2Range(
                                std::max<index_t>(1, base.rn_bandwidth / 4),
                                base.rn_bandwidth);
        } else if (axis.name == "accumulator_size") {
            acc_vals = axis.has_range
                           ? pow2Range(axis.lo, axis.hi)
                           : pow2Range(
                                 std::max<index_t>(1,
                                                   base.accumulator_size / 2),
                                 base.accumulator_size * 2);
        } else if (axis.name == "fabric") {
            sweep_fabric = true;
        }
    }

    std::vector<DesignPoint> points;
    const int fabric_count = sweep_fabric ? 2 : 1;
    for (int fabric = 0; fabric < fabric_count; ++fabric) {
        const bool sparse = fabric == 1;
        for (index_t ms : ms_vals) {
            for (index_t dn : dn_vals) {
                if (dn > ms)
                    continue;
                for (index_t rn : rn_vals) {
                    if (rn > ms)
                        continue;
                    for (index_t acc : acc_vals) {
                        DesignPoint p;
                        p.cfg = base;
                        p.cfg.ms_size = ms;
                        p.cfg.dn_bandwidth = dn;
                        p.cfg.rn_bandwidth = rn;
                        p.cfg.accumulator_size = acc;
                        if (sparse) {
                            p.cfg.dn_type = DnType::Benes;
                            p.cfg.mn_type = MnType::Disabled;
                            p.cfg.rn_type = RnType::Fan;
                            p.cfg.controller_type = ControllerType::Sparse;
                            p.cfg.dataflow = Dataflow::WeightStationary;
                        }
                        // A variant is a plain runnable instance; it
                        // must not re-trigger the search when its
                        // config text is fed back in.
                        p.cfg.explore = false;
                        p.cfg.autotune = false;
                        p.cfg.validate();
                        std::ostringstream label;
                        label << "ms=" << ms << " dn=" << dn << " rn=" << rn
                              << " acc=" << acc << " fabric="
                              << (sparse ? "sparse" : "dense");
                        p.label = label.str();
                        points.push_back(std::move(p));
                    }
                }
            }
        }
    }
    return points;
}

} // namespace stonne::explore
