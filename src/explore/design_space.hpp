/**
 * @file
 * Structural hardware design space of the co-search.
 *
 * DesignSpace expands a base accelerator into every structural
 * variant reachable along the requested axes: multiplier-switch
 * count, DN/RN global-buffer bandwidth, accumulation-buffer depth,
 * and the fabric axis that swaps the whole dense substrate for the
 * SIGMA-style sparse one (Benes DN, no MN forwarding, FAN RN, sparse
 * controller). Every variant is a complete, validated HardwareConfig
 * — anything the explorer ranks can also be run directly.
 */

#ifndef STONNE_EXPLORE_DESIGN_SPACE_HPP
#define STONNE_EXPLORE_DESIGN_SPACE_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "explore/axes.hpp"

namespace stonne::explore {

/** One structural hardware variant of the enumerated space. */
struct DesignPoint {
    HardwareConfig cfg;
    /** Human-readable axis assignment, e.g. "fabric=dense ms=256 ...". */
    std::string label;
};

/**
 * Enumerates the cross product of the axis value sets around a base
 * configuration.
 */
class DesignSpace
{
  public:
    /**
     * Expand `base` along `axes_spec` (see axes.hpp for the grammar).
     * Axes without an explicit range sweep power-of-two values around
     * the base's setting; the fabric axis emits a dense and a sparse
     * variant of every sizing. Variants whose bandwidth would exceed
     * their ms_size are skipped (they would fail validate()).
     * Enumeration order is deterministic: dense before sparse, then
     * ascending ms_size / dn_bandwidth / rn_bandwidth /
     * accumulator_size.
     */
    static std::vector<DesignPoint> enumerate(const HardwareConfig &base,
                                              const std::string &axes_spec);
};

} // namespace stonne::explore

#endif // STONNE_EXPLORE_DESIGN_SPACE_HPP
