/**
 * @file
 * Two-fidelity hardware x mapping co-search (Pareto explorer).
 *
 * The explorer ranks every structural variant of a DesignSpace with
 * the analytical cycle models (src/analytical) plus the closed-form
 * energy/area estimates, prunes the analytically dominated variants,
 * and cycle-simulates only the predicted frontier (the analytically
 * non-dominated set united with the top-K per objective). The exact
 * frontier it reports is therefore built purely from cycle-level
 * simulation outcomes; the analytical fidelity only decides *which*
 * points earn a simulation. Every cycle-level evaluation is memoized
 * in the dse::ResultCache (keyed on structural config text), so a
 * repeated exploration answers entirely from the cache.
 */

#ifndef STONNE_EXPLORE_EXPLORER_HPP
#define STONNE_EXPLORE_EXPLORER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json_writer.hpp"
#include "controller/layer.hpp"
#include "controller/tile.hpp"
#include "dse/cache.hpp"
#include "explore/design_space.hpp"
#include "explore/pareto.hpp"

namespace stonne::explore {

/** Search policy of one Explorer instance. */
struct ExploreOptions {
    /** Simulated candidates per objective beyond the predicted front. */
    index_t top_k = 4;
    /** Worker threads of the simulation sweep (0 = hardware). */
    std::size_t threads = 0;
    /** Cache file of the owned ResultCache ("" = in-memory). */
    std::string cache_file;
    /** Axes spec of the design space (axes.hpp grammar). */
    std::string axes =
        "ms_size,dn_bandwidth,rn_bandwidth,accumulator_size";
    /** Weight sparsity of the synthetic operands. */
    double sparsity = 0.0;
    /** Operand generation seed. */
    std::uint64_t seed = 1;
};

/** One cycle-simulated candidate of the exploration. */
struct ExplorePoint {
    std::string label;        //!< axis assignment of the variant
    Tile tile;                //!< mapping chosen for the variant
    cycle_t analytical_cycles = 0;
    double analytical_energy_uj = 0.0;
    cycle_t simulated_cycles = 0;
    double energy_uj = 0.0;   //!< cycle-level energy
    double area_um2 = 0.0;    //!< exact area (pure function of the config)
    double ms_utilization = 0.0;
    bool from_cache = false;
    bool on_frontier = false;
    /** Full config text of the variant; directly runnable. */
    std::string config_text;
};

/** Outcome of one exploreLayer() call. */
struct ExploreReport {
    std::size_t variants = 0;   //!< structural hardware variants
    std::size_t space_size = 0; //!< (variant, tile) points ranked
    std::size_t cache_hits = 0;
    std::size_t simulations_run = 0;
    /** Every simulated candidate, frontier first, then by cycles. */
    std::vector<ExplorePoint> points;
    /** Indices into `points` of the exact Pareto frontier. */
    std::vector<std::size_t> frontier;

    /** JSON block for run summaries (`explore` object). */
    JsonValue json() const;
};

/**
 * Runs the two-fidelity co-search around a base configuration. The
 * base must use the dense controller (its tile space is the mapping
 * dimension); the fabric axis derives sparse variants from it.
 */
class Explorer
{
  public:
    /** Owns a ResultCache loaded from / saved to opts.cache_file. */
    Explorer(const HardwareConfig &base, ExploreOptions opts);

    /**
     * Shares a caller-owned cache (the simulation service). The shared
     * cache is never saved here; its owner persists it.
     */
    Explorer(const HardwareConfig &base, ExploreOptions opts,
             dse::ResultCache &shared_cache);

    /** Explore for one dense layer (Convolution, Linear or Gemm). */
    ExploreReport exploreLayer(const LayerSpec &layer);

    /** Cycle-level simulations run by this instance so far. */
    std::uint64_t totalSimulations() const { return total_simulations_; }

    const dse::ResultCache &cache() const { return *cache_; }

  private:
    HardwareConfig base_;
    ExploreOptions opts_;
    std::unique_ptr<dse::ResultCache> own_cache_;
    dse::ResultCache *cache_;
    std::uint64_t total_simulations_ = 0;
};

} // namespace stonne::explore

#endif // STONNE_EXPLORE_EXPLORER_HPP
