/**
 * @file
 * Pareto dominance over the co-search's three objectives.
 *
 * The explorer minimizes (cycles, energy, area) jointly; a design
 * point is worth keeping exactly when no other point is at least as
 * good on every objective and strictly better on one. The helpers
 * here are pure functions over objective vectors so the dominance
 * semantics (ties, duplicates, single-objective collapse) are unit-
 * testable without running any model.
 */

#ifndef STONNE_EXPLORE_PARETO_HPP
#define STONNE_EXPLORE_PARETO_HPP

#include <cstddef>
#include <vector>

namespace stonne::explore {

/** One point in objective space; every objective is minimized. */
struct Objectives {
    double cycles = 0.0;
    double energy_uj = 0.0;
    double area_um2 = 0.0;
};

/**
 * Strict Pareto dominance: a is at least as good as b on every
 * objective and strictly better on at least one. Equal points do not
 * dominate each other.
 */
bool dominates(const Objectives &a, const Objectives &b);

/**
 * Indices of the mutually non-dominated points of `points`. Exact
 * duplicates collapse to their first occurrence (the frontier never
 * lists the same objective vector twice). Deterministic: the result
 * is sorted by (cycles, energy, area, original index).
 */
std::vector<std::size_t> paretoFront(const std::vector<Objectives> &points);

} // namespace stonne::explore

#endif // STONNE_EXPLORE_PARETO_HPP
