/**
 * @file
 * Deterministic fault injector (see fault_config.hpp for the model).
 *
 * One injector is owned by each Accelerator instance. All fault sites
 * are drawn from a dedicated seeded RNG stream in a fixed order — the
 * stuck-multiplier map at construction, then per-operation draws in
 * simulation order — so a given (configuration, seed) pair reproduces
 * bit-identical faults and statistics across runs and machines.
 *
 * Injection points:
 *  - deliverElements() asks dropFlits() how many accepted flits were
 *    lost in flight and must be retransmitted (cycle overhead), and
 *  - the STONNE API applies corruptTensor() to operands as they stage
 *    on-chip (DRAM bit flips on all operands, in-flight flit corruption
 *    on the streamed operand) and applyStuckMultipliers() to the output
 *    (stuck-at-zero compute under the output-stationary mapping:
 *    output element i accumulates at multiplier switch i mod ms_size).
 *
 * Every injected fault bumps a `faults.*` activity counter so resilience
 * experiments can read the injection census from the counter file.
 */

#ifndef STONNE_FAULTS_FAULT_INJECTOR_HPP
#define STONNE_FAULTS_FAULT_INJECTOR_HPP

#include <vector>

#include "checkpoint/checkpointable.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "faults/fault_config.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

/** Which corruption model corruptTensor() applies. */
enum class FaultSite {
    DramStaging, //!< bit flips while staging from DRAM (all operands)
    FlitPayload, //!< bit flips of flit payloads in the DN (streamed side)
};

/** Seeded injector of compute / interconnect / memory faults. */
class FaultInjector : public Checkpointable
{
  public:
    /**
     * @param cfg fault rates and seed (validated)
     * @param ms_size multiplier switches (stuck-at map domain)
     * @param stats registry receiving `faults.*` counters
     */
    FaultInjector(const FaultConfig &cfg, index_t ms_size,
                  StatsRegistry &stats);

    /** Whether any fault class can fire. */
    bool active() const { return cfg_.active(); }

    const FaultConfig &config() const { return cfg_; }

    /** Whether multiplier switch `ms` is stuck at zero. */
    bool multiplierStuck(index_t ms) const;

    /** Number of stuck multiplier switches in the map. */
    index_t stuckMultiplierCount() const { return stuck_count_; }

    /**
     * Of `accepted` flits granted into the DN this cycle, how many were
     * dropped in flight and must be retransmitted. Counts the drops.
     */
    index_t dropFlits(index_t accepted);

    /**
     * Flip one random bit of some elements of `t` (probability per
     * element from the site's rate). @return flips applied (counted).
     */
    count_t corruptTensor(Tensor &t, FaultSite site);

    /**
     * Zero every output element whose accumulating multiplier switch
     * (flat index mod ms_size) is stuck. @return elements zeroed
     * (counted as faults.stuck_outputs).
     */
    count_t applyStuckMultipliers(Tensor &out);

    /** Total faults injected since construction (all classes). */
    count_t totalInjected() const;

    /** One-line census for watchdog snapshots and reports. */
    std::string describe() const;

    /**
     * Serialize the RNG stream position (std::mt19937_64's textual
     * state) and the stuck-multiplier map, so a restored run draws
     * exactly the faults the uninterrupted run would have drawn.
     */
    void saveState(ArchiveWriter &ar) const override;
    void loadState(ArchiveReader &ar) override;

  private:
    FaultConfig cfg_;
    index_t ms_size_;
    Rng rng_;
    std::vector<char> stuck_;
    index_t stuck_count_ = 0;
    StatCounter *stuck_outputs_;
    StatCounter *dropped_flits_;
    StatCounter *corrupted_flits_;
    StatCounter *dram_bitflips_;
};

} // namespace stonne

#endif // STONNE_FAULTS_FAULT_INJECTOR_HPP
