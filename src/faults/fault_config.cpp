#include "faults/fault_config.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace stonne {

bool
FaultConfig::anyRate() const
{
    return stuck_multiplier_rate > 0.0 || flit_drop_rate > 0.0 ||
           flit_corrupt_rate > 0.0 || dram_bitflip_rate > 0.0;
}

void
FaultConfig::validate() const
{
    fatalIf(stuck_multiplier_rate < 0.0 || stuck_multiplier_rate > 1.0,
            "fault_stuck_multiplier_rate must lie in [0, 1], got ",
            stuck_multiplier_rate);
    // A drop rate of 1 would make every delivery retry forever; the
    // watchdog would catch it, but reject the configuration outright.
    fatalIf(flit_drop_rate < 0.0 || flit_drop_rate >= 1.0,
            "fault_flit_drop_rate must lie in [0, 1), got ",
            flit_drop_rate);
    fatalIf(flit_corrupt_rate < 0.0 || flit_corrupt_rate >= 1.0,
            "fault_flit_corrupt_rate must lie in [0, 1), got ",
            flit_corrupt_rate);
    fatalIf(dram_bitflip_rate < 0.0 || dram_bitflip_rate >= 1.0,
            "fault_dram_bitflip_rate must lie in [0, 1), got ",
            dram_bitflip_rate);
    fatalIf(core < -1, "fault_core must be -1 (all cores) or a core "
            "index >= 0, got ", core);
}

std::string
FaultConfig::toConfigText() const
{
    std::ostringstream os;
    os << "faults = " << (enabled ? "ON" : "OFF") << "\n"
       << "fault_seed = " << seed << "\n";
    if (stuck_multiplier_rate > 0.0)
        os << "fault_stuck_multiplier_rate = " << stuck_multiplier_rate
           << "\n";
    if (flit_drop_rate > 0.0)
        os << "fault_flit_drop_rate = " << flit_drop_rate << "\n";
    if (flit_corrupt_rate > 0.0)
        os << "fault_flit_corrupt_rate = " << flit_corrupt_rate << "\n";
    if (dram_bitflip_rate > 0.0)
        os << "fault_dram_bitflip_rate = " << dram_bitflip_rate << "\n";
    if (core >= 0)
        os << "fault_core = " << core << "\n";
    return os.str();
}

} // namespace stonne
