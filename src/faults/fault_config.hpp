/**
 * @file
 * Configuration of the fault-injection subsystem.
 *
 * Resilience studies inject deterministic, RNG-seeded hardware faults
 * into a simulated accelerator and measure the functional-output
 * divergence and cycle overhead they cause. Three fault classes are
 * modelled, one per architectural layer:
 *
 *  - stuck-at-zero multiplier switches (compute faults),
 *  - dropped / bit-corrupted network flits in the distribution fabric
 *    (interconnect faults; drops cost retransmission cycles),
 *  - DRAM bit flips applied to operand tensors as they are staged
 *    on-chip (memory faults).
 *
 * All draws come from one seeded generator, so the same configuration
 * and seed reproduce bit-identical fault sites and statistics.
 * Configured through `fault_*` keys in the `stonne_hw.cfg` file.
 */

#ifndef STONNE_FAULTS_FAULT_CONFIG_HPP
#define STONNE_FAULTS_FAULT_CONFIG_HPP

#include <cstdint>
#include <string>

namespace stonne {

/** User-facing knobs of the fault-injection subsystem. */
struct FaultConfig {
    /** Master switch; when false no fault state is even allocated. */
    bool enabled = false;

    /** Seed of the dedicated fault RNG stream. */
    std::uint64_t seed = 1;

    /** Fraction of multiplier switches stuck at zero, in [0, 1]. */
    double stuck_multiplier_rate = 0.0;

    /** Per-flit probability a DN flit is dropped and resent, in [0, 1). */
    double flit_drop_rate = 0.0;

    /** Per-flit probability of a single-bit payload flip, in [0, 1). */
    double flit_corrupt_rate = 0.0;

    /** Per-element probability of a bit flip during staging, in [0, 1). */
    double dram_bitflip_rate = 0.0;

    /**
     * Core the injector targets in a multi-core composition: -1 (the
     * default) injects into every core; `k` >= 0 restricts injection
     * to core k, leaving its siblings fault-free. A standalone
     * accelerator counts as core 0, so `k` >= 1 leaves it
     * injector-free. Configured with `fault_core = <k>`.
     */
    int core = -1;

    /** Whether any fault class has a non-zero rate. */
    bool anyRate() const;

    /** Whether injection is active (enabled and at least one rate). */
    bool active() const { return enabled && anyRate(); }

    /** Throw FatalError when a rate is outside its legal range. */
    void validate() const;

    /** `key = value` lines for HardwareConfig::toConfigText(). */
    std::string toConfigText() const;
};

} // namespace stonne

#endif // STONNE_FAULTS_FAULT_CONFIG_HPP
