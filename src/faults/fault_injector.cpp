#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"

namespace stonne {

FaultInjector::FaultInjector(const FaultConfig &cfg, index_t ms_size,
                             StatsRegistry &stats)
    : cfg_(cfg), ms_size_(ms_size), rng_(cfg.seed),
      stuck_outputs_(&stats.counter("faults.stuck_outputs",
                                    StatGroup::Other)),
      dropped_flits_(&stats.counter("faults.dropped_flits",
                                    StatGroup::Other)),
      corrupted_flits_(&stats.counter("faults.corrupted_flits",
                                      StatGroup::Other)),
      dram_bitflips_(&stats.counter("faults.dram_bitflips",
                                    StatGroup::Other))
{
    cfg_.validate();
    fatalIf(ms_size <= 0, "fault injector needs a positive ms_size");

    // The stuck-at map is drawn once, first, so it is independent of
    // how many operations later run on the instance.
    if (cfg_.enabled && cfg_.stuck_multiplier_rate > 0.0) {
        stuck_.resize(static_cast<std::size_t>(ms_size), 0);
        for (index_t i = 0; i < ms_size; ++i) {
            if (rng_.chance(cfg_.stuck_multiplier_rate)) {
                stuck_[static_cast<std::size_t>(i)] = 1;
                ++stuck_count_;
            }
        }
    }
}

bool
FaultInjector::multiplierStuck(index_t ms) const
{
    if (stuck_.empty())
        return false;
    panicIf(ms < 0 || ms >= ms_size_, "stuck-at query for multiplier ", ms,
            " outside [0, ", ms_size_, ")");
    return stuck_[static_cast<std::size_t>(ms)] != 0;
}

index_t
FaultInjector::dropFlits(index_t accepted)
{
    if (!active() || cfg_.flit_drop_rate <= 0.0 || accepted <= 0)
        return 0;
    index_t dropped = 0;
    for (index_t i = 0; i < accepted; ++i)
        if (rng_.chance(cfg_.flit_drop_rate))
            ++dropped;
    dropped_flits_->value += static_cast<count_t>(dropped);
    return dropped;
}

count_t
FaultInjector::corruptTensor(Tensor &t, FaultSite site)
{
    const double rate = site == FaultSite::DramStaging
        ? cfg_.dram_bitflip_rate : cfg_.flit_corrupt_rate;
    if (!active() || rate <= 0.0 || t.empty())
        return 0;

    count_t flips = 0;
    float *data = t.data();
    for (index_t i = 0; i < t.size(); ++i) {
        if (!rng_.chance(rate))
            continue;
        std::uint32_t bits;
        std::memcpy(&bits, &data[i], sizeof bits);
        bits ^= std::uint32_t{1} << rng_.integer(0, 31);
        std::memcpy(&data[i], &bits, sizeof bits);
        ++flips;
    }
    StatCounter *ctr = site == FaultSite::DramStaging ? dram_bitflips_
                                                      : corrupted_flits_;
    ctr->value += flips;
    return flips;
}

count_t
FaultInjector::applyStuckMultipliers(Tensor &out)
{
    if (stuck_count_ == 0 || out.empty())
        return 0;
    count_t zeroed = 0;
    float *data = out.data();
    for (index_t i = 0; i < out.size(); ++i) {
        if (stuck_[static_cast<std::size_t>(i % ms_size_)]) {
            data[i] = 0.0f;
            ++zeroed;
        }
    }
    stuck_outputs_->value += zeroed;
    return zeroed;
}

count_t
FaultInjector::totalInjected() const
{
    return stuck_outputs_->value + dropped_flits_->value +
           corrupted_flits_->value + dram_bitflips_->value;
}

std::string
FaultInjector::describe() const
{
    std::ostringstream os;
    if (!cfg_.enabled) {
        os << "faults disabled";
        return os.str();
    }
    os << "faults seed=" << cfg_.seed
       << " stuck_ms=" << stuck_count_ << "/" << ms_size_
       << " stuck_outputs=" << stuck_outputs_->value
       << " dropped_flits=" << dropped_flits_->value
       << " corrupted_flits=" << corrupted_flits_->value
       << " dram_bitflips=" << dram_bitflips_->value;
    return os.str();
}

void
FaultInjector::saveState(ArchiveWriter &ar) const
{
    std::ostringstream os;
    os << rng_.engine();
    ar.putString(os.str());
    ar.putString(std::string(stuck_.begin(), stuck_.end()));
    ar.putI64(stuck_count_);
}

void
FaultInjector::loadState(ArchiveReader &ar)
{
    const std::string engine_text = ar.getString();
    std::istringstream is(engine_text);
    is >> rng_.engine();
    if (!is)
        ar.fail("fault-injector RNG state is not a valid mt19937_64 "
                "stream");
    const std::string stuck = ar.getString();
    if (stuck.size() != stuck_.size())
        ar.fail("stuck-multiplier map has " +
                std::to_string(stuck.size()) + " entries, this instance "
                "has " + std::to_string(stuck_.size()) +
                " multiplier switches");
    std::copy(stuck.begin(), stuck.end(), stuck_.begin());
    stuck_count_ = ar.getI64();
}

} // namespace stonne
