#include "tensor/im2col.hpp"

#include "common/logging.hpp"

namespace stonne {

index_t
Conv2dShape::macs() const
{
    return N * K * outX() * outY() * R * S * cPerGroup();
}

void
Conv2dShape::validate() const
{
    fatalIf(R <= 0 || S <= 0 || C <= 0 || K <= 0 || G <= 0 || N <= 0 ||
            X <= 0 || Y <= 0,
            "convolution dimensions must be positive");
    fatalIf(stride <= 0, "stride must be positive");
    fatalIf(padding < 0, "padding must be non-negative");
    fatalIf(C % G != 0, "channels ", C, " not divisible by groups ", G);
    fatalIf(K % G != 0, "filters ", K, " not divisible by groups ", G);
    fatalIf(X + 2 * padding < R || Y + 2 * padding < S,
            "filter larger than padded input");
}

Tensor
im2col(const Tensor &input, const Conv2dShape &shape, index_t group)
{
    shape.validate();
    fatalIf(group < 0 || group >= shape.G, "group out of range");
    fatalIf(input.rank() != 4, "im2col expects a rank-4 input tensor");

    const index_t cg = shape.cPerGroup();
    const index_t xo = shape.outX();
    const index_t yo = shape.outY();
    const index_t rows = shape.R * shape.S * cg;
    const index_t cols = shape.N * xo * yo;

    Tensor out({rows, cols});
    const index_t c0 = group * cg;

    for (index_t n = 0; n < shape.N; ++n) {
        for (index_t ox = 0; ox < xo; ++ox) {
            for (index_t oy = 0; oy < yo; ++oy) {
                const index_t col = (n * xo + ox) * yo + oy;
                index_t row = 0;
                for (index_t c = 0; c < cg; ++c) {
                    for (index_t r = 0; r < shape.R; ++r) {
                        for (index_t s = 0; s < shape.S; ++s, ++row) {
                            const index_t ix =
                                ox * shape.stride + r - shape.padding;
                            const index_t iy =
                                oy * shape.stride + s - shape.padding;
                            float v = 0.0f;
                            if (ix >= 0 && ix < shape.X && iy >= 0 &&
                                iy < shape.Y) {
                                v = input.at(n, c0 + c, ix, iy);
                            }
                            out.at(row, col) = v;
                        }
                    }
                }
            }
        }
    }
    return out;
}

Tensor
filtersToMatrix(const Tensor &weights, const Conv2dShape &shape,
                index_t group)
{
    shape.validate();
    fatalIf(group < 0 || group >= shape.G, "group out of range");
    fatalIf(weights.rank() != 4, "filtersToMatrix expects rank-4 weights");

    const index_t cg = shape.cPerGroup();
    const index_t kg = shape.kPerGroup();
    const index_t cols = shape.R * shape.S * cg;

    Tensor out({kg, cols});
    const index_t k0 = group * kg;
    for (index_t k = 0; k < kg; ++k) {
        index_t col = 0;
        for (index_t c = 0; c < cg; ++c)
            for (index_t r = 0; r < shape.R; ++r)
                for (index_t s = 0; s < shape.S; ++s, ++col)
                    out.at(k, col) = weights.at(k0 + k, c, r, s);
    }
    return out;
}

void
col2im(const Tensor &result, const Conv2dShape &shape, index_t group,
       Tensor &output)
{
    const index_t xo = shape.outX();
    const index_t yo = shape.outY();
    const index_t kg = shape.kPerGroup();
    const index_t k0 = group * kg;

    fatalIf(result.rank() != 2 || result.dim(0) != kg ||
            result.dim(1) != shape.N * xo * yo,
            "col2im result shape mismatch");
    fatalIf(output.rank() != 4, "col2im expects a rank-4 output tensor");

    for (index_t k = 0; k < kg; ++k) {
        for (index_t n = 0; n < shape.N; ++n) {
            for (index_t ox = 0; ox < xo; ++ox) {
                for (index_t oy = 0; oy < yo; ++oy) {
                    const index_t col = (n * xo + ox) * yo + oy;
                    output.at(n, k0 + k, ox, oy) = result.at(k, col);
                }
            }
        }
    }
}

} // namespace stonne
