#include "tensor/reference.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace stonne::ref {

Tensor
gemm(const Tensor &a, const Tensor &b)
{
    fatalIf(a.rank() != 2 || b.rank() != 2, "gemm expects rank-2 operands");
    const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    fatalIf(b.dim(0) != k, "gemm inner dimensions mismatch: ", k, " vs ",
            b.dim(0));
    Tensor c({m, n});
    for (index_t i = 0; i < m; ++i) {
        for (index_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (index_t p = 0; p < k; ++p)
                acc += a.at(i, p) * b.at(p, j);
            c.at(i, j) = acc;
        }
    }
    return c;
}

Tensor
spmm(const CsrMatrix &a, const Tensor &b)
{
    fatalIf(b.rank() != 2, "spmm expects a rank-2 dense operand");
    fatalIf(b.dim(0) != a.cols, "spmm inner dimensions mismatch");
    const index_t n = b.dim(1);
    Tensor c({a.rows, n});
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (index_t p = a.row_ptr[static_cast<std::size_t>(i)];
                 p < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++p) {
                acc += a.values[static_cast<std::size_t>(p)] *
                       b.at(a.col_idx[static_cast<std::size_t>(p)], j);
            }
            c.at(i, j) = acc;
        }
    }
    return c;
}

Tensor
conv2d(const Tensor &input, const Tensor &weights, const Tensor &bias,
       const Conv2dShape &shape)
{
    shape.validate();
    fatalIf(input.rank() != 4, "conv2d expects rank-4 input");
    fatalIf(weights.rank() != 4, "conv2d expects rank-4 weights");
    fatalIf(!bias.empty() && bias.size() != shape.K,
            "conv2d bias size mismatch");

    const index_t xo = shape.outX(), yo = shape.outY();
    const index_t cg = shape.cPerGroup(), kg = shape.kPerGroup();
    Tensor out({shape.N, shape.K, xo, yo});

    for (index_t n = 0; n < shape.N; ++n) {
        for (index_t g = 0; g < shape.G; ++g) {
            for (index_t k = 0; k < kg; ++k) {
                const index_t ko = g * kg + k;
                for (index_t ox = 0; ox < xo; ++ox) {
                    for (index_t oy = 0; oy < yo; ++oy) {
                        float acc = 0.0f;
                        for (index_t c = 0; c < cg; ++c) {
                            for (index_t r = 0; r < shape.R; ++r) {
                                for (index_t s = 0; s < shape.S; ++s) {
                                    const index_t ix = ox * shape.stride +
                                        r - shape.padding;
                                    const index_t iy = oy * shape.stride +
                                        s - shape.padding;
                                    if (ix < 0 || ix >= shape.X || iy < 0 ||
                                        iy >= shape.Y)
                                        continue;
                                    acc += input.at(n, g * cg + c, ix, iy) *
                                           weights.at(ko, c, r, s);
                                }
                            }
                        }
                        // Bias applies after the reduction, matching the
                        // accelerator's collection-point addition order.
                        out.at(n, ko, ox, oy) =
                            acc + (bias.empty() ? 0.0f : bias.at(ko));
                    }
                }
            }
        }
    }
    return out;
}

Tensor
linear(const Tensor &input, const Tensor &weights, const Tensor &bias)
{
    fatalIf(input.rank() != 2, "linear expects rank-2 input");
    fatalIf(weights.rank() != 2, "linear expects rank-2 weights");
    const index_t n = input.dim(0), c = input.dim(1), k = weights.dim(0);
    fatalIf(weights.dim(1) != c, "linear dimension mismatch");
    fatalIf(!bias.empty() && bias.size() != k, "linear bias size mismatch");

    Tensor out({n, k});
    for (index_t i = 0; i < n; ++i) {
        for (index_t j = 0; j < k; ++j) {
            float acc = 0.0f;
            for (index_t p = 0; p < c; ++p)
                acc += input.at(i, p) * weights.at(j, p);
            out.at(i, j) = acc + (bias.empty() ? 0.0f : bias.at(j));
        }
    }
    return out;
}

Tensor
maxPool2d(const Tensor &input, index_t window, index_t stride)
{
    fatalIf(input.rank() != 4, "maxPool2d expects rank-4 input");
    fatalIf(window <= 0 || stride <= 0, "pool window/stride must be positive");
    const index_t n = input.dim(0), c = input.dim(1);
    const index_t x = input.dim(2), y = input.dim(3);
    const index_t xo = (x - window) / stride + 1;
    const index_t yo = (y - window) / stride + 1;
    fatalIf(xo <= 0 || yo <= 0, "pool window larger than input");

    Tensor out({n, c, xo, yo});
    for (index_t in = 0; in < n; ++in) {
        for (index_t ic = 0; ic < c; ++ic) {
            for (index_t ox = 0; ox < xo; ++ox) {
                for (index_t oy = 0; oy < yo; ++oy) {
                    float best = input.at(in, ic, ox * stride, oy * stride);
                    for (index_t r = 0; r < window; ++r)
                        for (index_t s = 0; s < window; ++s)
                            best = std::max(best,
                                input.at(in, ic, ox * stride + r,
                                         oy * stride + s));
                    out.at(in, ic, ox, oy) = best;
                }
            }
        }
    }
    return out;
}

Tensor
globalAvgPool(const Tensor &input)
{
    fatalIf(input.rank() != 4, "globalAvgPool expects rank-4 input");
    const index_t n = input.dim(0), c = input.dim(1);
    const index_t x = input.dim(2), y = input.dim(3);
    Tensor out({n, c, 1, 1});
    for (index_t in = 0; in < n; ++in) {
        for (index_t ic = 0; ic < c; ++ic) {
            float acc = 0.0f;
            for (index_t ix = 0; ix < x; ++ix)
                for (index_t iy = 0; iy < y; ++iy)
                    acc += input.at(in, ic, ix, iy);
            out.at(in, ic, 0, 0) = acc / static_cast<float>(x * y);
        }
    }
    return out;
}

Tensor
relu(const Tensor &input)
{
    Tensor out = input;
    for (index_t i = 0; i < out.size(); ++i)
        out.at(i) = std::max(0.0f, out.at(i));
    return out;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    fatalIf(a.shape() != b.shape(), "elementwise add shape mismatch");
    Tensor out = a;
    for (index_t i = 0; i < out.size(); ++i)
        out.at(i) += b.at(i);
    return out;
}

Tensor
softmax(const Tensor &input)
{
    fatalIf(input.rank() != 2, "softmax expects rank-2 input");
    const index_t n = input.dim(0), c = input.dim(1);
    Tensor out({n, c});
    for (index_t i = 0; i < n; ++i) {
        float mx = input.at(i, 0);
        for (index_t j = 1; j < c; ++j)
            mx = std::max(mx, input.at(i, j));
        float sum = 0.0f;
        for (index_t j = 0; j < c; ++j) {
            float e = std::exp(input.at(i, j) - mx);
            out.at(i, j) = e;
            sum += e;
        }
        for (index_t j = 0; j < c; ++j)
            out.at(i, j) /= sum;
    }
    return out;
}

Tensor
logSoftmax(const Tensor &input)
{
    Tensor sm = softmax(input);
    for (index_t i = 0; i < sm.size(); ++i)
        sm.at(i) = std::log(sm.at(i));
    return sm;
}

Tensor
layerNorm(const Tensor &input, float eps)
{
    fatalIf(input.rank() != 2, "layerNorm expects rank-2 input");
    const index_t n = input.dim(0), c = input.dim(1);
    Tensor out({n, c});
    for (index_t i = 0; i < n; ++i) {
        float mean = 0.0f;
        for (index_t j = 0; j < c; ++j)
            mean += input.at(i, j);
        mean /= static_cast<float>(c);
        float var = 0.0f;
        for (index_t j = 0; j < c; ++j) {
            float d = input.at(i, j) - mean;
            var += d * d;
        }
        var /= static_cast<float>(c);
        const float inv = 1.0f / std::sqrt(var + eps);
        for (index_t j = 0; j < c; ++j)
            out.at(i, j) = (input.at(i, j) - mean) * inv;
    }
    return out;
}

} // namespace stonne::ref
