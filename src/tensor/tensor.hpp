/**
 * @file
 * Dense row-major N-dimensional float tensor.
 *
 * This is the data substrate the front-end (the PyTorch stand-in) and the
 * simulated accelerator share. Values stay float end-to-end so that the
 * simulator's functional output can be bit-compared against the CPU
 * reference kernels, reproducing the paper's functional validation.
 */

#ifndef STONNE_TENSOR_TENSOR_HPP
#define STONNE_TENSOR_TENSOR_HPP

#include <initializer_list>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace stonne {

/** Dense row-major float tensor with up to any number of dimensions. */
class Tensor
{
  public:
    /** Empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<index_t> shape);

    Tensor(std::initializer_list<index_t> shape)
        : Tensor(std::vector<index_t>(shape)) {}

    /** Number of dimensions. */
    index_t rank() const { return static_cast<index_t>(shape_.size()); }

    /** Size of one dimension. */
    index_t dim(index_t i) const;

    const std::vector<index_t> &shape() const { return shape_; }

    /** Total number of elements. */
    index_t size() const { return static_cast<index_t>(data_.size()); }

    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &at(index_t flat);
    float at(index_t flat) const;

    /** 2-d element access (matrices). */
    float &at(index_t r, index_t c);
    float at(index_t r, index_t c) const;

    /** 4-d element access (N, C, H, W activations / K, C, R, S filters). */
    float &at(index_t a, index_t b, index_t c, index_t d);
    float at(index_t a, index_t b, index_t c, index_t d) const;

    /** Reinterpret the same storage under a new shape (same size). */
    Tensor reshaped(std::vector<index_t> new_shape) const;

    /** Set every element to v. */
    void fill(float v);

    /** Fill with deterministic uniform values in [lo, hi). */
    void fillUniform(Rng &rng, float lo = -1.0f, float hi = 1.0f);

    /** Fill with deterministic Gaussian values. */
    void fillNormal(Rng &rng, float mean = 0.0f, float stddev = 1.0f);

    /** Fraction of elements that are exactly zero. */
    double sparsity() const;

    /** Number of non-zero elements. */
    index_t nnz() const;

    /** Exact equality of shape and all values. */
    bool equals(const Tensor &other) const;

    /** Max |a - b| over all elements (shapes must match). */
    double maxAbsDiff(const Tensor &other) const;

  private:
    index_t flatIndex2(index_t r, index_t c) const;
    index_t flatIndex4(index_t a, index_t b, index_t c, index_t d) const;

    std::vector<index_t> shape_;
    std::vector<float> data_;
};

} // namespace stonne

#endif // STONNE_TENSOR_TENSOR_HPP
