/**
 * @file
 * Reference CPU kernels: the functional golden model.
 *
 * The paper validates STONNE functionally by comparing the simulator's
 * inference outputs against native PyTorch CPU execution ("they perfectly
 * match for all cases"). These kernels play the role of the native CPU
 * path: every accelerated operation has a reference implementation here,
 * and the test suite asserts exact equality between the two.
 */

#ifndef STONNE_TENSOR_REFERENCE_HPP
#define STONNE_TENSOR_REFERENCE_HPP

#include "tensor/im2col.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace stonne::ref {

/** Dense GEMM: C(M x N) = A(M x K) * B(K x N). */
Tensor gemm(const Tensor &a, const Tensor &b);

/** Sparse-dense GEMM with a CSR left operand. */
Tensor spmm(const CsrMatrix &a, const Tensor &b);

/** Direct (grouped, strided, padded) convolution.
 *  @param input (N, C, X, Y); @param weights (K, C/G, R, S);
 *  @param bias optional (K) or empty; @return (N, K, X', Y') */
Tensor conv2d(const Tensor &input, const Tensor &weights, const Tensor &bias,
              const Conv2dShape &shape);

/** Fully-connected layer: input (N, C) x weights (K, C) + bias (K). */
Tensor linear(const Tensor &input, const Tensor &weights, const Tensor &bias);

/** Max pooling with square window/stride. @param input (N, C, X, Y) */
Tensor maxPool2d(const Tensor &input, index_t window, index_t stride);

/** Global average pooling to (N, C, 1, 1). */
Tensor globalAvgPool(const Tensor &input);

/** Elementwise ReLU. */
Tensor relu(const Tensor &input);

/** Elementwise addition (residual connections). */
Tensor add(const Tensor &a, const Tensor &b);

/** Row-wise softmax over the last dimension of a rank-2 tensor. */
Tensor softmax(const Tensor &input);

/** Row-wise log-softmax over the last dimension of a rank-2 tensor. */
Tensor logSoftmax(const Tensor &input);

/** Layer normalization over the last dimension of a rank-2 tensor. */
Tensor layerNorm(const Tensor &input, float eps = 1e-5f);

} // namespace stonne::ref

#endif // STONNE_TENSOR_REFERENCE_HPP
