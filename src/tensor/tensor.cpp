#include "tensor/tensor.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace stonne {

Tensor::Tensor(std::vector<index_t> shape)
    : shape_(std::move(shape))
{
    index_t total = 1;
    for (index_t d : shape_) {
        fatalIf(d < 0, "tensor dimension must be non-negative, got ", d);
        total *= d;
    }
    data_.assign(static_cast<std::size_t>(total), 0.0f);
}

index_t
Tensor::dim(index_t i) const
{
    panicIf(i < 0 || i >= rank(), "tensor dim ", i, " out of range for rank ",
            rank());
    return shape_[static_cast<std::size_t>(i)];
}

float &
Tensor::at(index_t flat)
{
    panicIf(flat < 0 || flat >= size(), "flat index ", flat,
            " out of range for size ", size());
    return data_[static_cast<std::size_t>(flat)];
}

float
Tensor::at(index_t flat) const
{
    panicIf(flat < 0 || flat >= size(), "flat index ", flat,
            " out of range for size ", size());
    return data_[static_cast<std::size_t>(flat)];
}

index_t
Tensor::flatIndex2(index_t r, index_t c) const
{
    panicIf(rank() != 2, "2-d access on rank-", rank(), " tensor");
    panicIf(r < 0 || r >= shape_[0] || c < 0 || c >= shape_[1],
            "index (", r, ",", c, ") out of range for (", shape_[0], ",",
            shape_[1], ")");
    return r * shape_[1] + c;
}

float &
Tensor::at(index_t r, index_t c)
{
    return data_[static_cast<std::size_t>(flatIndex2(r, c))];
}

float
Tensor::at(index_t r, index_t c) const
{
    return data_[static_cast<std::size_t>(flatIndex2(r, c))];
}

index_t
Tensor::flatIndex4(index_t a, index_t b, index_t c, index_t d) const
{
    panicIf(rank() != 4, "4-d access on rank-", rank(), " tensor");
    panicIf(a < 0 || a >= shape_[0] || b < 0 || b >= shape_[1] ||
            c < 0 || c >= shape_[2] || d < 0 || d >= shape_[3],
            "4-d index out of range");
    return ((a * shape_[1] + b) * shape_[2] + c) * shape_[3] + d;
}

float &
Tensor::at(index_t a, index_t b, index_t c, index_t d)
{
    return data_[static_cast<std::size_t>(flatIndex4(a, b, c, d))];
}

float
Tensor::at(index_t a, index_t b, index_t c, index_t d) const
{
    return data_[static_cast<std::size_t>(flatIndex4(a, b, c, d))];
}

Tensor
Tensor::reshaped(std::vector<index_t> new_shape) const
{
    index_t total = 1;
    for (index_t d : new_shape)
        total *= d;
    fatalIf(total != size(), "reshape from ", size(), " elements to ",
            total, " elements");
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    return t;
}

void
Tensor::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &x : data_)
        x = rng.uniform(lo, hi);
}

void
Tensor::fillNormal(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = rng.normal(mean, stddev);
}

double
Tensor::sparsity() const
{
    if (data_.empty())
        return 0.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(size());
}

index_t
Tensor::nnz() const
{
    index_t n = 0;
    for (float x : data_)
        if (x != 0.0f)
            ++n;
    return n;
}

bool
Tensor::equals(const Tensor &other) const
{
    return shape_ == other.shape_ && data_ == other.data_;
}

double
Tensor::maxAbsDiff(const Tensor &other) const
{
    fatalIf(shape_ != other.shape_, "maxAbsDiff on mismatched shapes");
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(data_[i]) -
                                 static_cast<double>(other.data_[i])));
    return m;
}

} // namespace stonne
