/**
 * @file
 * im2col lowering of (grouped, strided, padded) convolutions to GEMM.
 *
 * The paper's sparse controller "runs GEMM operations (any CONV operation
 * can be mapped to GEMM using the img2col function)". This module provides
 * that lowering plus the shape bookkeeping shared by the dense pipeline.
 */

#ifndef STONNE_TENSOR_IM2COL_HPP
#define STONNE_TENSOR_IM2COL_HPP

#include "tensor/tensor.hpp"

namespace stonne {

/** Shape of a 2-d convolution, following the paper's 7-parameter layer
 *  definition Layer(R, S, C, K, G, N, X', Y') plus stride and padding. */
struct Conv2dShape {
    index_t R = 1;       //!< filter rows
    index_t S = 1;       //!< filter columns
    index_t C = 1;       //!< input channels (total, across groups)
    index_t K = 1;       //!< output channels (total, across groups)
    index_t G = 1;       //!< groups (factorized convolutions)
    index_t N = 1;       //!< batch size
    index_t X = 1;       //!< input rows
    index_t Y = 1;       //!< input columns
    index_t stride = 1;
    index_t padding = 0;

    /** Output rows X'. */
    index_t outX() const { return (X + 2 * padding - R) / stride + 1; }
    /** Output columns Y'. */
    index_t outY() const { return (Y + 2 * padding - S) / stride + 1; }
    /** Channels per group. */
    index_t cPerGroup() const { return C / G; }
    /** Filters per group. */
    index_t kPerGroup() const { return K / G; }
    /** Multiply-accumulate count of the dense convolution. */
    index_t macs() const;
    /** Validate divisibility and positivity constraints. */
    void validate() const;
};

/**
 * Lower one group of the input activation tensor to a patch matrix.
 *
 * @param input activations, shape (N, C, X, Y)
 * @param shape convolution shape
 * @param group group index in [0, G)
 * @return matrix of shape (R*S*Cg, N*X'*Y'), column j holding the patch
 *         feeding output position j
 */
Tensor im2col(const Tensor &input, const Conv2dShape &shape, index_t group);

/**
 * Flatten one group of the weight tensor to a filter matrix.
 *
 * @param weights filters, shape (K, Cg, R, S)
 * @return matrix of shape (Kg, R*S*Cg): row k = flattened filter k
 */
Tensor filtersToMatrix(const Tensor &weights, const Conv2dShape &shape,
                       index_t group);

/**
 * Scatter a GEMM result matrix (Kg x N*X'*Y') for one group back into the
 * output activation tensor of shape (N, K, X', Y').
 */
void col2im(const Tensor &result, const Conv2dShape &shape, index_t group,
            Tensor &output);

} // namespace stonne

#endif // STONNE_TENSOR_IM2COL_HPP
