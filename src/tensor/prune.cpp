#include "tensor/prune.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hpp"

namespace stonne {

namespace {

/** Prune a contiguous span in place to the given sparsity. */
void
pruneSpan(float *data, index_t n, double sparsity)
{
    if (n == 0 || sparsity <= 0.0)
        return;
    fatalIf(sparsity >= 1.0, "sparsity must be below 1.0, got ", sparsity);

    const auto keep_cutoff =
        static_cast<index_t>(std::llround(sparsity * static_cast<double>(n)));
    if (keep_cutoff <= 0)
        return;
    if (keep_cutoff >= n) {
        for (index_t i = 0; i < n; ++i)
            data[i] = 0.0f;
        return;
    }

    std::vector<float> mags(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i)
        mags[static_cast<std::size_t>(i)] = std::abs(data[i]);
    auto nth = mags.begin() + static_cast<std::ptrdiff_t>(keep_cutoff);
    std::nth_element(mags.begin(), nth, mags.end());
    const float threshold = *nth;

    // Zero strictly-below-threshold first, then zero ties until the exact
    // count is reached so the target ratio is hit deterministically.
    index_t zeroed = 0;
    for (index_t i = 0; i < n; ++i) {
        if (std::abs(data[i]) < threshold) {
            data[i] = 0.0f;
            ++zeroed;
        }
    }
    for (index_t i = 0; i < n && zeroed < keep_cutoff; ++i) {
        if (data[i] != 0.0f && std::abs(data[i]) == threshold) {
            data[i] = 0.0f;
            ++zeroed;
        }
    }
}

} // namespace

void
pruneMagnitude(Tensor &t, double sparsity)
{
    pruneSpan(t.data(), t.size(), sparsity);
}

void
pruneFiltersWithJitter(Tensor &t, double sparsity, double jitter, Rng &rng)
{
    fatalIf(t.rank() < 1, "filter pruning needs at least rank 1");
    const index_t filters = t.dim(0);
    const index_t per_filter = filters > 0 ? t.size() / filters : 0;
    for (index_t k = 0; k < filters; ++k) {
        double s = sparsity +
            rng.uniform(static_cast<float>(-jitter),
                        static_cast<float>(jitter));
        s = std::clamp(s, 0.0, 0.98);
        pruneSpan(t.data() + k * per_filter, per_filter, s);
    }
}

void
pruneRandom(Tensor &t, double sparsity, Rng &rng)
{
    fatalIf(sparsity < 0.0 || sparsity >= 1.0,
            "sparsity must lie in [0, 1), got ", sparsity);
    for (index_t i = 0; i < t.size(); ++i)
        if (rng.chance(sparsity))
            t.at(i) = 0.0f;
}

} // namespace stonne
