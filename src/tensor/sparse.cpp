#include "tensor/sparse.hpp"

#include "common/logging.hpp"

namespace stonne {

index_t
CsrMatrix::rowNnz(index_t r) const
{
    panicIf(r < 0 || r >= rows, "CSR row out of range");
    return row_ptr[static_cast<std::size_t>(r + 1)] -
           row_ptr[static_cast<std::size_t>(r)];
}

Tensor
CsrMatrix::toDense() const
{
    Tensor d({rows, cols});
    for (index_t r = 0; r < rows; ++r) {
        for (index_t i = row_ptr[static_cast<std::size_t>(r)];
             i < row_ptr[static_cast<std::size_t>(r + 1)]; ++i) {
            d.at(r, col_idx[static_cast<std::size_t>(i)]) =
                values[static_cast<std::size_t>(i)];
        }
    }
    return d;
}

index_t
CsrMatrix::storageBytes(index_t bytes_per_value, index_t bytes_per_index) const
{
    return nnz() * (bytes_per_value + bytes_per_index) +
           (rows + 1) * bytes_per_index;
}

CsrMatrix
CsrMatrix::fromDense(const Tensor &dense)
{
    fatalIf(dense.rank() != 2, "CSR conversion expects a rank-2 tensor");
    CsrMatrix m;
    m.rows = dense.dim(0);
    m.cols = dense.dim(1);
    m.row_ptr.reserve(static_cast<std::size_t>(m.rows + 1));
    m.row_ptr.push_back(0);
    // Raw row-major scan: this conversion runs on every SpMM lowering,
    // so the per-element bounds checks of at() are pure overhead here.
    const float *d = dense.data();
    for (index_t r = 0; r < m.rows; ++r) {
        const float *row = d + r * m.cols;
        for (index_t c = 0; c < m.cols; ++c) {
            const float v = row[c];
            if (v != 0.0f) {
                m.col_idx.push_back(c);
                m.values.push_back(v);
            }
        }
        m.row_ptr.push_back(static_cast<index_t>(m.values.size()));
    }
    return m;
}

bool
BitmapMatrix::present(index_t r, index_t c) const
{
    panicIf(r < 0 || r >= rows || c < 0 || c >= cols,
            "bitmap index out of range");
    return bitmap[static_cast<std::size_t>(r * cols + c)];
}

Tensor
BitmapMatrix::toDense() const
{
    Tensor d({rows, cols});
    std::size_t vi = 0;
    for (index_t r = 0; r < rows; ++r) {
        for (index_t c = 0; c < cols; ++c) {
            if (bitmap[static_cast<std::size_t>(r * cols + c)]) {
                panicIf(vi >= values.size(), "bitmap value underrun");
                d.at(r, c) = values[vi++];
            }
        }
    }
    panicIf(vi != values.size(), "bitmap value overrun");
    return d;
}

index_t
BitmapMatrix::storageBytes(index_t bytes_per_value) const
{
    return nnz() * bytes_per_value + (rows * cols + 7) / 8;
}

BitmapMatrix
BitmapMatrix::fromDense(const Tensor &dense)
{
    fatalIf(dense.rank() != 2, "bitmap conversion expects a rank-2 tensor");
    BitmapMatrix m;
    m.rows = dense.dim(0);
    m.cols = dense.dim(1);
    m.bitmap.assign(static_cast<std::size_t>(m.rows * m.cols), false);
    for (index_t r = 0; r < m.rows; ++r) {
        for (index_t c = 0; c < m.cols; ++c) {
            float v = dense.at(r, c);
            if (v != 0.0f) {
                m.bitmap[static_cast<std::size_t>(r * m.cols + c)] = true;
                m.values.push_back(v);
            }
        }
    }
    return m;
}

std::vector<index_t>
rowNnzSizes(const CsrMatrix &m)
{
    std::vector<index_t> sizes;
    sizes.reserve(static_cast<std::size_t>(m.rows));
    for (index_t r = 0; r < m.rows; ++r)
        sizes.push_back(m.rowNnz(r));
    return sizes;
}

} // namespace stonne
