/**
 * @file
 * Sparse matrix encodings used by the sparse memory controller.
 *
 * The paper's sparse controller "supports both bitmap and CSR formats to
 * represent the sparsity of the MK and KN matrices" (Section IV-B). Both
 * formats are implemented here along with the conversion and statistics
 * the controllers and the Figure 7 analysis need.
 */

#ifndef STONNE_TENSOR_SPARSE_HPP
#define STONNE_TENSOR_SPARSE_HPP

#include <vector>

#include "tensor/tensor.hpp"

namespace stonne {

/** Compressed Sparse Row matrix of floats. */
struct CsrMatrix {
    index_t rows = 0;
    index_t cols = 0;
    std::vector<index_t> row_ptr;  //!< size rows + 1
    std::vector<index_t> col_idx;  //!< size nnz
    std::vector<float> values;     //!< size nnz

    index_t nnz() const { return static_cast<index_t>(values.size()); }

    /** Non-zeros in one row. */
    index_t rowNnz(index_t r) const;

    /** Dense (rows x cols) reconstruction. */
    Tensor toDense() const;

    /** Storage footprint in bytes given a value width. */
    index_t storageBytes(index_t bytes_per_value,
                         index_t bytes_per_index = 4) const;

    /** Build from a dense rank-2 tensor. */
    static CsrMatrix fromDense(const Tensor &dense);
};

/** Bitmap-compressed matrix: one presence bit per position plus packed
 *  non-zero values in row-major order. */
struct BitmapMatrix {
    index_t rows = 0;
    index_t cols = 0;
    std::vector<bool> bitmap;   //!< rows * cols presence bits
    std::vector<float> values;  //!< packed non-zeros, row-major

    index_t nnz() const { return static_cast<index_t>(values.size()); }

    bool present(index_t r, index_t c) const;

    /** Dense (rows x cols) reconstruction. */
    Tensor toDense() const;

    /** Storage footprint in bytes given a value width. */
    index_t storageBytes(index_t bytes_per_value) const;

    /** Build from a dense rank-2 tensor. */
    static BitmapMatrix fromDense(const Tensor &dense);
};

/** Per-row nnz histogram of a CSR matrix (Figure 7b's filter sizes). */
std::vector<index_t> rowNnzSizes(const CsrMatrix &m);

} // namespace stonne

#endif // STONNE_TENSOR_SPARSE_HPP
