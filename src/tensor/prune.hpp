/**
 * @file
 * Weight pruning to target sparsity ratios.
 *
 * Table I of the paper reports 60-90 % weight sparsity obtained with "an
 * unstructured weight pruning approach similar to that described by Zhu
 * et al." (magnitude pruning). We reproduce that: given synthetic trained
 * weights, zero the smallest-magnitude fraction. A per-filter jitter knob
 * produces the *non-uniform* per-filter nnz distributions that drive the
 * sparse-execution results (Figs 1c, 7, 9) — real pruned networks never
 * prune every filter equally.
 */

#ifndef STONNE_TENSOR_PRUNE_HPP
#define STONNE_TENSOR_PRUNE_HPP

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace stonne {

/**
 * Zero the smallest-magnitude fraction of all elements (unstructured
 * magnitude pruning, Zhu & Gupta style).
 *
 * @param t tensor pruned in place
 * @param sparsity target fraction of zeros in [0, 1)
 */
void pruneMagnitude(Tensor &t, double sparsity);

/**
 * Prune a filter tensor (dim 0 = filters) with per-filter sparsity drawn
 * uniformly from [sparsity - jitter, sparsity + jitter], clamped to
 * [0, 0.98]. The expected overall sparsity stays near the target while
 * individual filter nnz counts vary, as in real pruned models.
 */
void pruneFiltersWithJitter(Tensor &t, double sparsity, double jitter,
                            Rng &rng);

/** Zero each element independently with probability `sparsity`. */
void pruneRandom(Tensor &t, double sparsity, Rng &rng);

} // namespace stonne

#endif // STONNE_TENSOR_PRUNE_HPP
