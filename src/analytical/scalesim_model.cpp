#include "analytical/scalesim_model.hpp"

#include "common/logging.hpp"

namespace stonne::analytical {

cycle_t
scaleSimOsCycles(const GemmDims &g, index_t rows, index_t cols)
{
    fatalIf(rows <= 0 || cols <= 0, "array dimensions must be positive");
    fatalIf(g.m <= 0 || g.n <= 0 || g.k <= 0, "GEMM dims must be positive");

    cycle_t total = 0;
    for (index_t m0 = 0; m0 < g.m; m0 += rows) {
        const index_t mt = std::min(rows, g.m - m0);
        for (index_t n0 = 0; n0 < g.n; n0 += cols) {
            const index_t nt = std::min(cols, g.n - n0);
            // Wavefront (K + mt + nt - 2) plus the injection/drain
            // register stages of the modelled array (the RTL-validated
            // per-tile cost of Table V is K + ar + ac + 2).
            total += static_cast<cycle_t>(g.k + mt + nt + 2);
        }
    }
    return total;
}

cycle_t
scaleSimOsCycles(const LayerSpec &layer, index_t rows, index_t cols)
{
    const GemmDims g = layer.gemmView();
    // Grouped convolutions run one GEMM per group.
    const index_t groups =
        layer.kind == LayerKind::Convolution ? layer.conv.G : 1;
    return static_cast<cycle_t>(groups) * scaleSimOsCycles(g, rows, cols);
}

} // namespace stonne::analytical
