#include "analytical/sigma_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace stonne::analytical {

namespace {

index_t
log2Ceil(index_t v)
{
    index_t l = 0;
    index_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

} // namespace

cycle_t
sigmaCycles(index_t m, index_t n, index_t k, index_t total_nnz,
            const HardwareConfig &cfg)
{
    fatalIf(m <= 0 || n <= 0 || k <= 0, "GEMM dims must be positive");
    fatalIf(total_nnz < 0 || total_nnz > m * k,
            "nnz out of range for an ", m, "x", k, " matrix");
    if (total_nnz == 0)
        return 1;

    // Uniform-density assumption: every row has the average size, and
    // whole rows pack per round (SIGMA maps entire filters; only
    // oversized rows fold). The real distribution of zeros makes the
    // actual packing diverge from this — the Figure 1c effect.
    const double avg_nnz =
        static_cast<double>(total_nnz) / static_cast<double>(m);
    const auto rows_per_round = std::max<index_t>(
        1, static_cast<index_t>(static_cast<double>(cfg.ms_size) /
                                std::max(1.0, avg_nnz)));
    const index_t rounds = (m + rows_per_round - 1) / rows_per_round;
    const auto nnz_per_round = static_cast<index_t>(
        std::ceil(avg_nnz * static_cast<double>(rows_per_round)));

    // Per round: the stationary load streams the mapped non-zeros, then
    // every output column needs at most the K distinct streaming values
    // (perfect multicast across rows).
    const auto load = static_cast<cycle_t>(
        (nnz_per_round + cfg.dn_bandwidth - 1) / cfg.dn_bandwidth);
    const index_t union_k = std::min(k, nnz_per_round);
    const auto per_col = static_cast<cycle_t>(
        std::max<index_t>(1, (union_k + cfg.dn_bandwidth - 1) /
                             cfg.dn_bandwidth));

    const cycle_t fill =
        static_cast<cycle_t>(2 * log2Ceil(cfg.ms_size) + 1) +
        static_cast<cycle_t>(log2Ceil(cfg.ms_size)) + 1;

    return static_cast<cycle_t>(rounds) *
        (load + static_cast<cycle_t>(n) * per_col) + fill;
}

} // namespace stonne::analytical
