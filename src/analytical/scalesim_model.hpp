/**
 * @file
 * SCALE-Sim-style analytical model of an output-stationary systolic array.
 *
 * SCALE-Sim computes runtime with closed-form expressions over the array
 * dimensions and the GEMM shape: per output tile of (ar x ac) PEs running
 * a K-long dot product, the wavefront takes K + ar + ac - 2 cycles, and
 * tiles execute back to back. Figure 1a of the paper shows this matches
 * cycle-level simulation almost perfectly for rigid arrays — the point
 * being that analytical models are fine *until* the architecture gets
 * flexible or the computation irregular.
 */

#ifndef STONNE_ANALYTICAL_SCALESIM_MODEL_HPP
#define STONNE_ANALYTICAL_SCALESIM_MODEL_HPP

#include "controller/layer.hpp"

namespace stonne::analytical {

/**
 * Analytical cycle count for C(M x N) = A(M x K) * B(K x N) on an
 * output-stationary (rows x cols) systolic array.
 */
cycle_t scaleSimOsCycles(const GemmDims &g, index_t rows, index_t cols);

/** Convenience overload lowering any layer through its GEMM view. */
cycle_t scaleSimOsCycles(const LayerSpec &layer, index_t rows, index_t cols);

} // namespace stonne::analytical

#endif // STONNE_ANALYTICAL_SCALESIM_MODEL_HPP
