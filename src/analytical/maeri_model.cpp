#include "analytical/maeri_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace stonne::analytical {

namespace {

index_t
blocks(index_t total, index_t t)
{
    return (total + t - 1) / t;
}

index_t
log2Ceil(index_t v)
{
    index_t l = 0;
    index_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

} // namespace

cycle_t
maeriCycles(const LayerSpec &layer, const Tile &tile,
            const HardwareConfig &cfg)
{
    layer.validate();
    tile.validate(layer, cfg.ms_size);

    index_t g_total = 1, kg = 1, n = 1, xo = 1, yo = 1;
    if (layer.kind == LayerKind::Convolution) {
        const Conv2dShape &c = layer.conv;
        g_total = c.G;
        kg = c.kPerGroup();
        n = c.N;
        xo = c.outX();
        yo = c.outY();
    } else {
        const GemmDims g = layer.gemmView();
        kg = g.m;
        yo = g.n;
    }

    const index_t window = layer.gemmView().k;
    const index_t vn = tile.vnSize();
    const index_t folds = tile.folds(window);

    const index_t iterations =
        blocks(g_total, tile.t_g) * blocks(kg, tile.t_k);
    const index_t steps = blocks(n, tile.t_n) * blocks(xo, tile.t_x) *
        blocks(yo, tile.t_y);

    // Steady state: one psum per VN per cycle -> one cycle per step per
    // fold. Weight reconfiguration streams tg*tk*vn distinct values per
    // fold at the configured bandwidth, double-buffered behind the
    // previous fold's compute: only the excess is exposed.
    const index_t w_per_fold = tile.t_g * tile.t_k * std::min(vn, window);
    const index_t w_cycles =
        (w_per_fold + cfg.dn_bandwidth - 1) / cfg.dn_bandwidth;
    const cycle_t compute = static_cast<cycle_t>(iterations) *
        static_cast<cycle_t>(steps) * static_cast<cycle_t>(folds);
    const cycle_t weight_dist = static_cast<cycle_t>(iterations) *
        static_cast<cycle_t>(folds) *
        static_cast<cycle_t>(std::max<index_t>(0, w_cycles - steps));
    const cycle_t ramp = static_cast<cycle_t>(log2Ceil(cfg.ms_size));

    return compute + weight_dist + ramp;
}

} // namespace stonne::analytical
