/**
 * @file
 * SIGMA's analytical performance model (average-sparsity-based).
 *
 * Reimplements the analytical model the SIGMA authors provide: the MK
 * stationary matrix's *average* row density determines how many rows fit
 * per mapping round, and every round streams the KN columns at ideal
 * bandwidth. Because the model only sees the average, it cannot capture
 * how the actual distribution of zeros shapes the cluster sizes — the
 * effect Figure 1c shows diverging up to 92 % at 90 % sparsity, where
 * real packing leaves switches idle that the average-based model assumes
 * busy.
 */

#ifndef STONNE_ANALYTICAL_SIGMA_MODEL_HPP
#define STONNE_ANALYTICAL_SIGMA_MODEL_HPP

#include "common/config.hpp"
#include "common/types.hpp"

namespace stonne::analytical {

/**
 * Analytical cycles for a sparse GEMM C(M x N) = A(M x K) * B(K x N)
 * on a SIGMA-like accelerator.
 *
 * @param total_nnz non-zeros of the stationary MK operand (the model
 *        only knows the aggregate, not the distribution)
 */
cycle_t sigmaCycles(index_t m, index_t n, index_t k, index_t total_nnz,
                    const HardwareConfig &cfg);

} // namespace stonne::analytical

#endif // STONNE_ANALYTICAL_SIGMA_MODEL_HPP
