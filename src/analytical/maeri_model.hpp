/**
 * @file
 * MAERI's analytical performance model (bandwidth-oblivious).
 *
 * Reimplements the analytical model the MAERI authors provide: given a
 * tile configuration, steady-state throughput is one psum per virtual
 * neuron per cycle, plus the ideal weight reconfiguration time. The
 * model assumes the distribution and reduction networks never conflict —
 * accurate at full bandwidth, but it misses the serialization stalls a
 * cycle-level simulator captures when bandwidth drops (Figure 1b shows
 * up to 400 % underestimation at 32 elements/cycle).
 */

#ifndef STONNE_ANALYTICAL_MAERI_MODEL_HPP
#define STONNE_ANALYTICAL_MAERI_MODEL_HPP

#include "common/config.hpp"
#include "controller/tile.hpp"

namespace stonne::analytical {

/** Analytical cycles for a layer on a MAERI-like flexible accelerator. */
cycle_t maeriCycles(const LayerSpec &layer, const Tile &tile,
                    const HardwareConfig &cfg);

} // namespace stonne::analytical

#endif // STONNE_ANALYTICAL_MAERI_MODEL_HPP
