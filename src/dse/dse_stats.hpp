/**
 * @file
 * Design-space exploration summary attached to simulation results.
 *
 * A plain value type with no dependency on the rest of src/dse, so the
 * engine's SimulationResult can carry it (and the Output Module can
 * report it) without the engine depending on the tuner.
 */

#ifndef STONNE_DSE_DSE_STATS_HPP
#define STONNE_DSE_DSE_STATS_HPP

#include <cstdint>
#include <string>

namespace stonne {

/** What one (or an aggregation of) tuned operation(s) cost and won. */
struct DseSummary {
    /** Whether any tuning happened (gates the JSON `dse` block). */
    bool enabled = false;

    /** Legal tile candidates enumerated (after constraint pruning). */
    std::uint64_t space_size = 0;

    /** Candidates evaluated cycle-level (cache hits + simulations). */
    std::uint64_t evaluated = 0;

    /** Evaluations served from the content-addressed result cache. */
    std::uint64_t cache_hits = 0;

    /** Cycle-level simulations actually run. */
    std::uint64_t simulations_run = 0;

    /**
     * Spearman rank correlation between the analytical pre-filter's
     * ordering and the simulated ordering of the evaluated candidates
     * (1 = the cheap model ranks exactly like the simulator). For an
     * aggregation, the evaluation-weighted mean of the per-layer
     * correlations.
     */
    double rank_correlation = 0.0;

    /** Canonical form of the winning tile (last tuned operation). */
    std::string chosen_tile;

    /** Simulated cycles of the winning tile. */
    std::uint64_t chosen_cycles = 0;

    /** Simulated cycles of the greedy Mapper::generateTile choice. */
    std::uint64_t greedy_cycles = 0;

    /** greedy_cycles - chosen_cycles, summed over tuned operations. */
    std::int64_t cycles_saved_vs_greedy = 0;

    /** Aggregate another tuned operation's summary into this one. */
    void
    merge(const DseSummary &o)
    {
        if (!o.enabled)
            return;
        const double w =
            static_cast<double>(evaluated + o.evaluated);
        if (w > 0.0)
            rank_correlation =
                (rank_correlation * static_cast<double>(evaluated) +
                 o.rank_correlation * static_cast<double>(o.evaluated)) /
                w;
        enabled = true;
        space_size += o.space_size;
        evaluated += o.evaluated;
        cache_hits += o.cache_hits;
        simulations_run += o.simulations_run;
        chosen_tile = o.chosen_tile;
        chosen_cycles += o.chosen_cycles;
        greedy_cycles += o.greedy_cycles;
        cycles_saved_vs_greedy += o.cycles_saved_vs_greedy;
    }
};

} // namespace stonne

#endif // STONNE_DSE_DSE_STATS_HPP
