/**
 * @file
 * Content-addressed cache of cycle-level simulation outcomes.
 *
 * A tuner run simulates many (config, layer, tile) points, and sweeps
 * revisit the same points constantly; a point's outcome is fully
 * determined by its canonical key text — the structural configuration
 * text (policy knobs normalized away; fast-forward and exact execution
 * are bit-identical), the layer shape, the tile in canonical form and
 * the data-policy knobs (seed/sparsity for the value-dependent
 * controllers). Entries are addressed by a stable 64-bit FNV-1a hash
 * of that text; the full key text is stored alongside the outcome so a
 * hash collision reads as a miss, never as a wrong answer.
 *
 * Persistence reuses the src/checkpoint archive format: versioned,
 * CRC-guarded, atomically published (tmp + rename), so a crash
 * mid-save never corrupts the cache and a corrupt/alien file is
 * detected and discarded instead of poisoning results.
 */

#ifndef STONNE_DSE_CACHE_HPP
#define STONNE_DSE_CACHE_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "common/types.hpp"
#include "controller/layer.hpp"
#include "controller/tile.hpp"

namespace stonne::dse {

/** The cached outcome of one cycle-level simulation point. */
struct CachedOutcome {
    cycle_t cycles = 0;
    double energy_uj = 0.0;
    double area_um2 = 0.0;
    double ms_utilization = 0.0;
};

/**
 * Content-addressed, archive-persisted simulation-outcome cache.
 *
 * Thread-safe: lookup/insert/save/size may be called concurrently from
 * any number of threads (the simulation service shares one instance
 * between all of its workers and every tuner they run). The internal
 * mutex covers each call; save() snapshots the entries under the lock
 * and serializes outside it, so a long archive write never stalls the
 * hot lookup path.
 */
class ResultCache
{
  public:
    /**
     * @param path cache file to load from / save to ("" = in-memory
     *        only). A missing file starts empty; a corrupt or
     *        alien-format file is discarded (the next save overwrites
     *        it) — a damaged cache must never fail or poison a tuner
     *        run.
     */
    explicit ResultCache(std::string path = "");

    /** Stable FNV-1a 64-bit hash of a canonical key text. */
    static std::uint64_t hashKey(const std::string &key_text);

    /**
     * Canonical key text of one simulation point: structural config
     * text + layer shape + canonical tile + data-policy text
     * (seed/sparsity and any value-dependent knobs the caller adds).
     */
    static std::string keyText(const HardwareConfig &cfg,
                               const LayerSpec &layer, const Tile &tile,
                               const std::string &policy);

    /** Look up a key; the stored key text must match byte-for-byte. */
    std::optional<CachedOutcome> lookup(const std::string &key_text) const;

    /** Record an outcome (overwrites a colliding/stale entry). */
    void insert(const std::string &key_text, const CachedOutcome &outcome);

    /** Persist to the cache file (no-op for in-memory caches). */
    void save() const;

    std::size_t size() const;
    const std::string &path() const { return path_; }

    /** Entries whose file could not be parsed at load (0 or all). */
    bool loadFailed() const { return load_failed_; }

  private:
    struct Entry {
        std::string key_text;
        CachedOutcome outcome;
    };

    void load();

    std::string path_;
    mutable std::mutex mu_;      //!< guards entries_
    mutable std::mutex save_mu_; //!< serializes writers of the file
    // Ordered by hash so the persisted file is deterministic.
    std::map<std::uint64_t, Entry> entries_;
    bool load_failed_ = false;
};

} // namespace stonne::dse

#endif // STONNE_DSE_CACHE_HPP
