/**
 * @file
 * TileSpace: enumeration of the legal tile/mapping space of one layer
 * on one hardware configuration.
 *
 * The paper's headline use case is exploring the accelerator design
 * space; the mapping axis of that space is the Tile(T_R, T_S, T_C,
 * T_G, T_K, T_N, T_X', T_Y') partition the dense controller executes.
 * Candidates are divisor-based — every tile dimension divides its
 * layer dimension exactly, so no ceil() quantization loss hides inside
 * a candidate — and pruned against the configuration: a tile whose
 * cluster footprint exceeds the multiplier array is illegal. The
 * greedy Mapper::generateTile choice (which is *not* necessarily
 * divisor-shaped) is appended so a search over the space can never do
 * worse than the existing heuristic.
 */

#ifndef STONNE_DSE_TILE_SPACE_HPP
#define STONNE_DSE_TILE_SPACE_HPP

#include <vector>

#include "common/config.hpp"
#include "controller/tile.hpp"

namespace stonne::dse {

/** Legal-tile enumeration for one (layer, configuration) pair. */
class TileSpace
{
  public:
    /**
     * Enumerate every legal divisor-based tile of `layer` on `cfg`,
     * plus the greedy mapper's tile, deduplicated and in a
     * deterministic order. Only dense-controller layer kinds
     * (Convolution, Linear, Gemm) have a tile space; FatalError
     * otherwise.
     */
    static std::vector<Tile> enumerate(const LayerSpec &layer,
                                       const HardwareConfig &cfg);

    /** The divisors of v in increasing order. */
    static std::vector<index_t> divisors(index_t v);
};

} // namespace stonne::dse

#endif // STONNE_DSE_TILE_SPACE_HPP
