#include "dse/tile_space.hpp"

#include <functional>
#include <unordered_set>

#include "common/logging.hpp"
#include "controller/mapper.hpp"

namespace stonne::dse {

std::vector<index_t>
TileSpace::divisors(index_t v)
{
    fatalIf(v <= 0, "divisors of a non-positive value");
    std::vector<index_t> small, large;
    for (index_t d = 1; d * d <= v; ++d) {
        if (v % d != 0)
            continue;
        small.push_back(d);
        if (d != v / d)
            large.push_back(v / d);
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}

namespace {

/**
 * Cross the divisor lists of the cluster dims (T_R, T_S, T_C) with the
 * parallel dims (T_G, T_K, T_N, T_X', T_Y'), bailing out of a branch
 * as soon as the partial multiplier footprint exceeds the array — the
 * footprint is monotone in every dimension, so the pruning is exact.
 */
void
cross(const std::vector<std::vector<index_t>> &axes, std::size_t axis,
      index_t used_ms, index_t ms_size, Tile &t,
      const std::function<void(const Tile &)> &emit)
{
    if (axis == axes.size()) {
        emit(t);
        return;
    }
    index_t *dims[8] = {&t.t_r, &t.t_s, &t.t_c, &t.t_g,
                        &t.t_k, &t.t_n, &t.t_x, &t.t_y};
    for (const index_t v : axes[axis]) {
        if (used_ms * v > ms_size)
            break; // divisors ascend: every later v is larger
        *dims[axis] = v;
        cross(axes, axis + 1, used_ms * v, ms_size, t, emit);
    }
    *dims[axis] = 1;
}

} // namespace

std::vector<Tile>
TileSpace::enumerate(const LayerSpec &layer, const HardwareConfig &cfg)
{
    layer.validate();
    fatalIf(layer.kind != LayerKind::Convolution &&
            layer.kind != LayerKind::Linear &&
            layer.kind != LayerKind::Gemm,
            "layer '", layer.name, "' (", layerKindName(layer.kind),
            ") has no tile space: only dense-controller operations take "
            "an explicit tile");

    std::vector<std::vector<index_t>> axes(8, {1});
    if (layer.kind == LayerKind::Convolution) {
        const Conv2dShape &c = layer.conv;
        axes[0] = divisors(c.R);
        axes[1] = divisors(c.S);
        axes[2] = divisors(c.cPerGroup());
        axes[3] = divisors(c.G);
        axes[4] = divisors(c.kPerGroup());
        axes[5] = divisors(c.N);
        axes[6] = divisors(c.outX());
        axes[7] = divisors(c.outY());
    } else {
        // GEMM tiles use only T_C (dot slice), T_K (rows), T_Y' (cols).
        const GemmDims g = layer.gemmView();
        axes[2] = divisors(g.k);
        axes[4] = divisors(g.m);
        axes[7] = divisors(g.n);
    }

    std::vector<Tile> out;
    std::unordered_set<Tile> seen;
    const auto emit = [&](const Tile &t) {
        if (seen.insert(t).second)
            out.push_back(t);
    };
    Tile t;
    cross(axes, 0, 1, cfg.ms_size, t, emit);

    // The greedy heuristic's pick may not be divisor-shaped; keeping it
    // in the space guarantees the search never regresses below it.
    emit(Mapper(cfg.ms_size).generateTile(layer));

    for (const Tile &cand : out)
        cand.validate(layer, cfg.ms_size);
    return out;
}

} // namespace stonne::dse
