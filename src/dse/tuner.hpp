/**
 * @file
 * AutoTuner: mapping design-space exploration for one accelerator
 * configuration.
 *
 * The search combines the two simulation fidelities the codebase
 * already has. The analytical model (src/analytical) costs microseconds
 * per candidate but misses bandwidth serialization; the cycle-level
 * simulator is exact but costs milliseconds-to-seconds. The tuner
 * enumerates the legal tile space (TileSpace), ranks every candidate
 * with the analytical model, and simulates only the top K analytical
 * picks (plus the greedy mapper's tile, so the result can never be
 * worse than the status quo) on the SweepRunner thread pool. Simulated
 * outcomes are served from / recorded into a content-addressed
 * ResultCache, so re-tuning a known point costs a hash lookup instead
 * of a simulation.
 *
 * The report keeps both orderings and their Spearman rank correlation —
 * the paper's Figure 1 argument (analytical models misrank mappings
 * once bandwidth matters) becomes a measurable number per layer.
 */

#ifndef STONNE_DSE_TUNER_HPP
#define STONNE_DSE_TUNER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "controller/layer.hpp"
#include "controller/tile.hpp"
#include "dse/cache.hpp"
#include "dse/dse_stats.hpp"

namespace stonne::dse {

/** Knobs of one tuning run. */
struct TuneOptions {
    /** Candidates simulated cycle-level per layer (>= 1). */
    index_t top_k = 8;

    /** Worker threads for candidate evaluation (0 = hardware). */
    unsigned threads = 0;

    /** Result-cache file ("" keeps the cache in memory only). */
    std::string cache_file;

    /** Operand sparsity/seed for the synthetic evaluation data. */
    double sparsity = 0.0;
    std::uint64_t seed = 1;
};

/** One evaluated candidate in a tuning report. */
struct EvaluatedTile {
    Tile tile;
    cycle_t analytical_cycles = 0;
    cycle_t simulated_cycles = 0;
    double energy_uj = 0.0;
    double area_um2 = 0.0;
    double ms_utilization = 0.0;
    bool from_cache = false;
};

/** Outcome of tuning one layer. */
struct TuneReport {
    Tile best;
    cycle_t best_cycles = 0;

    /** The greedy Mapper::generateTile baseline, always evaluated. */
    Tile greedy_tile;
    cycle_t greedy_cycles = 0;

    /** Legal candidates enumerated (before the top-K cut). */
    std::uint64_t space_size = 0;

    std::uint64_t cache_hits = 0;
    std::uint64_t simulations_run = 0;

    /** Spearman correlation of analytical vs simulated ordering. */
    double rank_correlation = 0.0;

    /** Every evaluated candidate, fastest simulated first. */
    std::vector<EvaluatedTile> ranked;

    /** The summary block a SimulationResult carries for this run. */
    DseSummary summary() const;
};

/** Mapping auto-tuner bound to one hardware configuration. */
class AutoTuner
{
  public:
    explicit AutoTuner(const HardwareConfig &cfg, TuneOptions opts = {});

    /**
     * Tuner over an externally owned (thread-safe) result cache: the
     * simulation service shares one ResultCache between all concurrent
     * jobs this way. `opts.cache_file` is ignored — persistence
     * belongs to the cache's owner, so this tuner never calls save().
     */
    AutoTuner(const HardwareConfig &cfg, TuneOptions opts,
              ResultCache &shared_cache);

    /**
     * Tune one dense-controller layer (Convolution / Linear / Gemm):
     * enumerate, pre-filter analytically, evaluate top-K cycle-level,
     * persist new outcomes to the cache. Deterministic: same layer,
     * configuration and options always pick the same tile.
     */
    TuneReport tuneLayer(const LayerSpec &layer);

    const ResultCache &cache() const { return *cache_; }

    /** Cycle-level simulations run over this tuner's lifetime. */
    std::uint64_t totalSimulations() const { return total_simulations_; }

  private:
    HardwareConfig cfg_; //!< evaluation config (policy knobs silenced)
    TuneOptions opts_;
    std::unique_ptr<ResultCache> own_cache_; //!< null when shared
    ResultCache *cache_;                     //!< owned or shared
    std::uint64_t total_simulations_ = 0;
};

/**
 * Spearman rank correlation of two paired samples (average ranks on
 * ties; 1.0 for degenerate inputs shorter than 2). Exposed for tests.
 */
double spearmanCorrelation(const std::vector<double> &a,
                           const std::vector<double> &b);

} // namespace stonne::dse

#endif // STONNE_DSE_TUNER_HPP
