#include "dse/cache.hpp"

#include <filesystem>
#include <sstream>

#include "checkpoint/archive.hpp"
#include "common/logging.hpp"

namespace stonne::dse {

namespace {

/** Shape-only layer text: the name is cosmetic and must not split
 *  cache entries between identically-shaped layers. */
std::string
layerKeyText(const LayerSpec &layer)
{
    std::ostringstream os;
    os << layerKindName(layer.kind);
    if (layer.kind == LayerKind::Convolution ||
        layer.kind == LayerKind::MaxPool) {
        const Conv2dShape &c = layer.conv;
        os << " R" << c.R << " S" << c.S << " C" << c.C << " K" << c.K
           << " G" << c.G << " N" << c.N << " X" << c.X << " Y" << c.Y
           << " stride" << c.stride << " pad" << c.padding;
    } else {
        const GemmDims g = layer.gemm;
        os << " M" << g.m << " N" << g.n << " K" << g.k;
    }
    if (layer.kind == LayerKind::MaxPool)
        os << " window" << layer.pool_window << " pstride"
           << layer.pool_stride;
    return os.str();
}

} // namespace

ResultCache::ResultCache(std::string path)
    : path_(std::move(path))
{
    load();
}

std::uint64_t
ResultCache::hashKey(const std::string &key_text)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    for (const char c : key_text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV prime
    }
    return h;
}

std::string
ResultCache::keyText(const HardwareConfig &cfg, const LayerSpec &layer,
                     const Tile &tile, const std::string &policy)
{
    std::ostringstream os;
    os << "[config]\n" << cfg.structuralText() << "[layer]\n"
       << layerKeyText(layer) << "\n[tile]\n" << tile.canonical()
       << "\n[policy]\n" << policy << "\n";
    return os.str();
}

std::optional<CachedOutcome>
ResultCache::lookup(const std::string &key_text) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(hashKey(key_text));
    if (it == entries_.end() || it->second.key_text != key_text)
        return std::nullopt;
    return it->second.outcome;
}

void
ResultCache::insert(const std::string &key_text,
                    const CachedOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_[hashKey(key_text)] = Entry{key_text, outcome};
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
ResultCache::load()
{
    if (path_.empty() || !std::filesystem::exists(path_))
        return;
    try {
        ArchiveReader ar(path_);
        // v2 added the area field to each record; a v1 ("dse_cache")
        // file fails the section-name check below and is rebuilt.
        ar.enterSection("dse_cache_v2");
        const std::uint64_t n = ar.getU64();
        std::map<std::uint64_t, Entry> loaded;
        for (std::uint64_t i = 0; i < n; ++i) {
            Entry e;
            e.key_text = ar.getString();
            e.outcome.cycles = ar.getU64();
            e.outcome.energy_uj = ar.getDouble();
            e.outcome.area_um2 = ar.getDouble();
            e.outcome.ms_utilization = ar.getDouble();
            loaded.emplace(hashKey(e.key_text), std::move(e));
        }
        ar.leaveSection();
        entries_ = std::move(loaded);
    } catch (const CheckpointError &e) {
        // A damaged cache is an inconvenience, not an error: start
        // empty and let the next save() replace the file.
        warn("dse cache '", path_, "' is unreadable and will be "
             "rebuilt: ", e.what());
        entries_.clear();
        load_failed_ = true;
    }
}

void
ResultCache::save() const
{
    if (path_.empty())
        return;
    // Snapshot under the entries lock, serialize and write outside it:
    // the archive write (CRC + tmp/rename) must not stall concurrent
    // lookups. Writers themselves are serialized by save_mu_ — two
    // concurrent saves would race on the shared .tmp sibling.
    std::lock_guard<std::mutex> save_lock(save_mu_);
    std::map<std::uint64_t, Entry> snapshot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        snapshot = entries_;
    }
    ArchiveWriter ar;
    ar.beginSection("dse_cache_v2");
    ar.putU64(snapshot.size());
    for (const auto &[hash, e] : snapshot) {
        (void)hash;
        ar.putString(e.key_text);
        ar.putU64(e.outcome.cycles);
        ar.putDouble(e.outcome.energy_uj);
        ar.putDouble(e.outcome.area_um2);
        ar.putDouble(e.outcome.ms_utilization);
    }
    ar.endSection();
    ar.writeFile(path_);
}

} // namespace stonne::dse
