#include "dse/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <sstream>

#include "analytical/maeri_model.hpp"
#include "common/logging.hpp"
#include "common/sweep_pool.hpp"
#include "controller/mapper.hpp"
#include "dse/tile_space.hpp"
#include "engine/workload.hpp"

namespace stonne::dse {

namespace {

/** 1-based ranks of v, ties sharing their average rank. */
std::vector<double>
averageRanks(const std::vector<double> &v)
{
    const std::size_t n = v.size();
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && v[idx[j + 1]] == v[idx[i]])
            ++j;
        const double rank = (static_cast<double>(i + j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[idx[k]] = rank;
        i = j + 1;
    }
    return ranks;
}

/** Data-policy part of the cache key: the knobs that shape operands. */
std::string
policyText(const TuneOptions &o)
{
    std::ostringstream os;
    os << "seed=" << o.seed << " sparsity=" << o.sparsity;
    return os.str();
}

/**
 * The configuration candidate evaluations run under: structurally
 * identical to the tuned one, but with the side-effect knobs silenced
 * so worker threads never race on shared trace/checkpoint files (and a
 * tuned run never re-enters the tuner).
 */
HardwareConfig
evalConfig(HardwareConfig cfg)
{
    cfg.trace = false;
    cfg.checkpoint = false;
    cfg.autotune = false;
    return cfg;
}

} // namespace

double
spearmanCorrelation(const std::vector<double> &a,
                    const std::vector<double> &b)
{
    fatalIf(a.size() != b.size(),
            "spearmanCorrelation: sample sizes differ (", a.size(), " vs ",
            b.size(), ")");
    if (a.size() < 2)
        return 1.0;
    const std::vector<double> ra = averageRanks(a);
    const std::vector<double> rb = averageRanks(b);
    const double n = static_cast<double>(a.size());
    const double ma = std::accumulate(ra.begin(), ra.end(), 0.0) / n;
    const double mb = std::accumulate(rb.begin(), rb.end(), 0.0) / n;
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        const double da = ra[i] - ma;
        const double db = rb[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va == 0.0 && vb == 0.0)
        return 1.0; // both orderings degenerate: trivially agree
    if (va == 0.0 || vb == 0.0)
        return 0.0; // one side carries no ordering information
    return cov / std::sqrt(va * vb);
}

DseSummary
TuneReport::summary() const
{
    DseSummary s;
    s.enabled = true;
    s.space_size = space_size;
    s.evaluated = ranked.size();
    s.cache_hits = cache_hits;
    s.simulations_run = simulations_run;
    s.rank_correlation = rank_correlation;
    s.chosen_tile = best.canonical();
    s.chosen_cycles = best_cycles;
    s.greedy_cycles = greedy_cycles;
    s.cycles_saved_vs_greedy = static_cast<std::int64_t>(greedy_cycles) -
                               static_cast<std::int64_t>(best_cycles);
    return s;
}

AutoTuner::AutoTuner(const HardwareConfig &cfg, TuneOptions opts)
    : cfg_(evalConfig(cfg)), opts_(std::move(opts)),
      own_cache_(std::make_unique<ResultCache>(opts_.cache_file)),
      cache_(own_cache_.get())
{
    fatalIf(opts_.top_k <= 0, "AutoTuner: top_k must be positive, got ",
            opts_.top_k);
    cfg_.validate();
}

AutoTuner::AutoTuner(const HardwareConfig &cfg, TuneOptions opts,
                     ResultCache &shared_cache)
    : cfg_(evalConfig(cfg)), opts_(std::move(opts)), cache_(&shared_cache)
{
    fatalIf(opts_.top_k <= 0, "AutoTuner: top_k must be positive, got ",
            opts_.top_k);
    cfg_.validate();
}

TuneReport
AutoTuner::tuneLayer(const LayerSpec &layer)
{
    const std::vector<Tile> space = TileSpace::enumerate(layer, cfg_);
    const Tile greedy = Mapper(cfg_.ms_size).generateTile(layer);

    // Analytical pre-filter: rank the whole space with the cheap model,
    // deterministically (canonical form breaks analytical ties).
    struct Cand {
        Tile tile;
        cycle_t analytical;
        std::string canonical;
    };
    std::vector<Cand> cands;
    cands.reserve(space.size());
    for (const Tile &t : space)
        cands.push_back(
            {t, analytical::maeriCycles(layer, t, cfg_), t.canonical()});
    std::sort(cands.begin(), cands.end(), [](const Cand &a, const Cand &b) {
        if (a.analytical != b.analytical)
            return a.analytical < b.analytical;
        return a.canonical < b.canonical;
    });

    // Evaluation set: the analytical top-K, plus the greedy baseline so
    // the tuned pick can never regress below the status quo.
    const std::size_t k = std::min<std::size_t>(
        cands.size(), static_cast<std::size_t>(opts_.top_k));
    std::vector<Cand> eval(cands.begin(),
                           cands.begin() + static_cast<std::ptrdiff_t>(k));
    const bool greedy_in_top = std::any_of(
        eval.begin(), eval.end(),
        [&](const Cand &c) { return c.tile == greedy; });
    if (!greedy_in_top)
        eval.push_back(
            {greedy, analytical::maeriCycles(layer, greedy, cfg_),
             greedy.canonical()});

    // Serve what the cache knows; collect the rest as simulation jobs.
    const std::string policy = policyText(opts_);
    struct Slot {
        EvaluatedTile et;
        std::string key;
    };
    std::vector<Slot> slots(eval.size());
    std::vector<std::size_t> jobs;
    for (std::size_t i = 0; i < eval.size(); ++i) {
        Slot &s = slots[i];
        s.et.tile = eval[i].tile;
        s.et.analytical_cycles = eval[i].analytical;
        s.key = ResultCache::keyText(cfg_, layer, eval[i].tile, policy);
        if (const auto hit = cache_->lookup(s.key)) {
            s.et.simulated_cycles = hit->cycles;
            s.et.energy_uj = hit->energy_uj;
            s.et.area_um2 = hit->area_um2;
            s.et.ms_utilization = hit->ms_utilization;
            s.et.from_cache = true;
        } else {
            jobs.push_back(i);
        }
    }

    if (!jobs.empty()) {
        // One shared operand bundle; every worker copies it into its own
        // accelerator instance, so slots are written race-free.
        const LayerData data =
            makeLayerData(layer, opts_.sparsity, opts_.seed);
        std::vector<std::function<void()>> work;
        work.reserve(jobs.size());
        for (const std::size_t i : jobs)
            work.push_back([this, &layer, &data, &slots, i] {
                Stonne st(cfg_);
                const SimulationResult r =
                    runLayer(st, layer, data, slots[i].et.tile);
                slots[i].et.simulated_cycles = r.cycles;
                slots[i].et.energy_uj = r.energy.total();
                slots[i].et.area_um2 = r.area.total();
                slots[i].et.ms_utilization = r.ms_utilization;
            });
        SweepRunner(opts_.threads).run(work);
        for (const std::size_t i : jobs)
            cache_->insert(slots[i].key,
                           CachedOutcome{slots[i].et.simulated_cycles,
                                         slots[i].et.energy_uj,
                                         slots[i].et.area_um2,
                                         slots[i].et.ms_utilization});
        // A shared cache is persisted by its owner (the service saves
        // once at shutdown), not after every layer.
        if (own_cache_)
            own_cache_->save();
    }

    TuneReport rep;
    rep.space_size = space.size();
    rep.cache_hits = slots.size() - jobs.size();
    rep.simulations_run = jobs.size();
    total_simulations_ += jobs.size();

    std::vector<double> analytical_v, simulated_v;
    analytical_v.reserve(slots.size());
    simulated_v.reserve(slots.size());
    for (const Slot &s : slots) {
        analytical_v.push_back(
            static_cast<double>(s.et.analytical_cycles));
        simulated_v.push_back(static_cast<double>(s.et.simulated_cycles));
    }
    rep.rank_correlation = spearmanCorrelation(analytical_v, simulated_v);

    rep.ranked.reserve(slots.size());
    for (const Slot &s : slots)
        rep.ranked.push_back(s.et);
    std::sort(rep.ranked.begin(), rep.ranked.end(),
              [](const EvaluatedTile &a, const EvaluatedTile &b) {
                  if (a.simulated_cycles != b.simulated_cycles)
                      return a.simulated_cycles < b.simulated_cycles;
                  if (a.analytical_cycles != b.analytical_cycles)
                      return a.analytical_cycles < b.analytical_cycles;
                  return a.tile.canonical() < b.tile.canonical();
              });

    rep.best = rep.ranked.front().tile;
    rep.best_cycles = rep.ranked.front().simulated_cycles;
    rep.greedy_tile = greedy;
    for (const EvaluatedTile &et : rep.ranked)
        if (et.tile == greedy) {
            rep.greedy_cycles = et.simulated_cycles;
            break;
        }
    return rep;
}

} // namespace stonne::dse
